/**
 * @file
 * Multithreaded workload generators standing in for the paper's FFT
 * and RADIX (SPLASH-2) and PageRank (GAP) benchmarks.
 *
 * All threads of one workload share a footprint; a factory hands out
 * one generator per thread. The archetypes:
 *
 *  - PartitionedSweepGen (FFT/RADIX-like): phase-structured kernels.
 *    Each thread sweeps its own partition sequentially, then the
 *    partition assignment rotates (butterfly/permute phases), giving
 *    the large-object-sweep behaviour of Section V-A with bursts of
 *    cross-thread row conflicts at phase boundaries.
 *  - PageRankGen: per-thread sequential scan over its slice of the
 *    edge array mixed with random gathers into the shared rank vector.
 */

#ifndef MITHRIL_WORKLOAD_MULTITHREADED_HH
#define MITHRIL_WORKLOAD_MULTITHREADED_HH

#include "common/random.hh"
#include "workload/trace.hh"

namespace mithril::workload
{

/** Shared configuration for a multithreaded workload. */
struct MtParams
{
    Addr base = 0;
    std::uint64_t footprint = 256ull << 20;
    std::uint32_t threads = 16;
    double meanGap = 6.0;
    double writeFraction = 0.35;
    std::uint64_t seed = 23;
    std::uint64_t phaseLines = 4096;  //!< Lines per thread per phase.
};

/** FFT/RADIX-like partition-rotating sweep; one instance per thread. */
class PartitionedSweepGen : public TraceGenerator
{
  public:
    PartitionedSweepGen(const MtParams &params, std::uint32_t thread_id);

    std::optional<TraceRecord> next() override;
    std::string name() const override { return "mt-sweep"; }

  private:
    MtParams params_;
    std::uint32_t threadId_;
    Rng rng_;
    std::uint64_t phase_ = 0;
    std::uint64_t lineInPhase_ = 0;
};

/** PageRank-like scan + random gather; one instance per thread. */
class PageRankGen : public TraceGenerator
{
  public:
    PageRankGen(const MtParams &params, std::uint32_t thread_id);

    std::optional<TraceRecord> next() override;
    std::string name() const override { return "pagerank"; }

  private:
    MtParams params_;
    std::uint32_t threadId_;
    Rng rng_;
    Addr scanCursor_;
    std::uint64_t scanLeft_ = 0;
};

} // namespace mithril::workload

#endif // MITHRIL_WORKLOAD_MULTITHREADED_HH
