#include "spec_like.hh"

#include <cstdio>

#include "common/logging.hh"
#include "registry/workload_registry.hh"

namespace mithril::workload
{

namespace
{

constexpr std::uint64_t kLine = 64;

Addr
alignLine(Addr a)
{
    return a & ~(kLine - 1);
}

} // namespace

StreamSweepGen::StreamSweepGen(const SyntheticParams &params,
                               std::uint64_t object_bytes)
    : params_(params), objectBytes_(object_bytes), rng_(params.seed),
      cursor_(params.base)
{
    MITHRIL_ASSERT(params_.footprint >= objectBytes_);
    MITHRIL_ASSERT(objectBytes_ >= kLine);
}

std::optional<TraceRecord>
StreamSweepGen::next()
{
    if (produced_ >= params_.limit)
        return std::nullopt;
    ++produced_;

    if (leftInObject_ == 0) {
        // Jump to a random object start and sweep it sequentially.
        const std::uint64_t objects = params_.footprint / objectBytes_;
        const std::uint64_t pick = rng_.nextBounded(objects);
        cursor_ = alignLine(params_.base + pick * objectBytes_);
        leftInObject_ = objectBytes_ / kLine;
    }

    TraceRecord rec;
    rec.gap = rng_.nextGeometric(params_.meanGap);
    rec.addr = cursor_;
    rec.write = rng_.nextBool(params_.writeFraction);
    cursor_ += kLine;
    --leftInObject_;
    return rec;
}

PointerChaseGen::PointerChaseGen(const SyntheticParams &params)
    : params_(params), rng_(params.seed)
{
    MITHRIL_ASSERT(params_.footprint >= kLine);
}

std::optional<TraceRecord>
PointerChaseGen::next()
{
    if (produced_ >= params_.limit)
        return std::nullopt;
    ++produced_;

    TraceRecord rec;
    rec.gap = rng_.nextGeometric(params_.meanGap);
    rec.addr = alignLine(params_.base +
                         rng_.nextBounded(params_.footprint));
    rec.write = rng_.nextBool(params_.writeFraction);
    return rec;
}

ZipfGen::ZipfGen(const SyntheticParams &params, double exponent)
    : params_(params), exponent_(exponent), rng_(params.seed)
{
    MITHRIL_ASSERT(params_.footprint >= kLine);
}

std::optional<TraceRecord>
ZipfGen::next()
{
    if (produced_ >= params_.limit)
        return std::nullopt;
    ++produced_;

    const std::uint64_t lines = params_.footprint / kLine;
    TraceRecord rec;
    rec.gap = rng_.nextGeometric(params_.meanGap);
    // Zipf over lines, bit-reversed-ish scatter so hot lines land in
    // different rows rather than clustering at the footprint start.
    const std::uint64_t rank = rng_.nextZipf(lines, exponent_);
    const std::uint64_t scattered = (rank * 0x9e3779b97f4a7c15ull) %
                                    lines;
    rec.addr = alignLine(params_.base + scattered * kLine);
    rec.write = rng_.nextBool(params_.writeFraction);
    return rec;
}

ComputeGen::ComputeGen(const SyntheticParams &params)
    : params_(params), rng_(params.seed)
{
    MITHRIL_ASSERT(params_.footprint >= kLine);
}

std::optional<TraceRecord>
ComputeGen::next()
{
    if (produced_ >= params_.limit)
        return std::nullopt;
    ++produced_;

    TraceRecord rec;
    // Compute-bound: an order of magnitude larger gaps and a small,
    // cache-resident working set (most accesses never reach DRAM).
    rec.gap = rng_.nextGeometric(params_.meanGap * 12.0);
    const std::uint64_t hot = std::max<std::uint64_t>(
        kLine, params_.footprint / 64);
    rec.addr = alignLine(params_.base + rng_.nextBounded(hot));
    rec.write = rng_.nextBool(params_.writeFraction);
    return rec;
}

GupsGen::GupsGen(const SyntheticParams &params)
    : params_(params), rng_(params.seed)
{
    MITHRIL_ASSERT(params_.footprint >= kLine);
}

std::optional<TraceRecord>
GupsGen::next()
{
    if (produced_ >= params_.limit)
        return std::nullopt;
    ++produced_;

    TraceRecord rec;
    if (havePending_) {
        // Write-back half of the update; dependent, so a short gap.
        havePending_ = false;
        rec.gap = 2;
        rec.addr = pendingWrite_;
        rec.write = true;
        return rec;
    }
    rec.gap = rng_.nextGeometric(params_.meanGap);
    rec.addr = alignLine(params_.base +
                         rng_.nextBounded(params_.footprint));
    rec.write = false;
    pendingWrite_ = rec.addr;
    havePending_ = true;
    return rec;
}

StencilGen::StencilGen(const SyntheticParams &params,
                       std::uint32_t planes)
    : params_(params), planes_(planes), rng_(params.seed)
{
    MITHRIL_ASSERT(planes_ >= 2);
    MITHRIL_ASSERT(params_.footprint >= (planes_ + 1) * kLine);
}

std::optional<TraceRecord>
StencilGen::next()
{
    if (produced_ >= params_.limit)
        return std::nullopt;

    // One "iteration" touches `planes_` read streams then one write
    // stream, each offset by footprint/(planes_+1), all sharing the
    // same line cursor.
    const std::uint64_t streams = planes_ + 1;
    const std::uint64_t stream_bytes = params_.footprint / streams;
    const std::uint64_t stream_lines = stream_bytes / kLine;
    const std::uint64_t phase = produced_ % streams;
    ++produced_;
    const std::uint64_t line = cursor_ % stream_lines;

    TraceRecord rec;
    rec.gap = rng_.nextGeometric(params_.meanGap);
    rec.addr =
        alignLine(params_.base + phase * stream_bytes + line * kLine);
    rec.write = (phase == streams - 1);
    if (phase == streams - 1)
        ++cursor_;
    return rec;
}

// ------------------------------------------------------ registration
//
// The multi-programmed mixes and single-pattern synthetic workloads of
// the evaluation (Section VI-A) register here; the multithreaded
// kernels register in multithreaded.cc.

namespace
{

using registry::WorkloadContext;

const registry::ParamDesc kMeanGapParam = {
    "mean-gap",
    registry::ParamDesc::Type::Double,
    "", // Per-workload default; filled in below.
    1.0,
    10000.0,
    "mean instructions per LLC-missing access",
};

registry::ParamDesc
meanGapParam(double def)
{
    registry::ParamDesc desc = kMeanGapParam;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", def);
    desc.def = buf;
    return desc;
}

const registry::Registrar<registry::WorkloadTraits> kRegisterMixHigh{{
    /*name=*/"mix-high",
    /*display=*/"mix-high",
    /*description=*/
    "memory-intensive SPEC-like mix (stream/chase/zipf per core)",
    /*aliases=*/{},
    /*uses=*/"seed",
    /*params=*/{meanGapParam(28.0)},
    /*make=*/
    [](const ParamSet &params, const WorkloadContext &ctx)
        -> std::unique_ptr<TraceGenerator> {
        SyntheticParams p;
        p.base = ctx.privateBase();
        p.seed = ctx.seed * 1009 + ctx.coreId;
        // ~36 LLC accesses per 1000 instructions, matching the L3
        // MPKI of memory-intensive SPEC CPU2017 workloads.
        p.meanGap =
            params.getDoubleIn("mean-gap", 28.0, 1.0, 10000.0);
        // Rotate the three memory-intensive archetypes.
        switch (ctx.coreId % 3) {
          case 0:
            p.footprint = 96ull << 20;
            return std::make_unique<StreamSweepGen>(p);
          case 1:
            p.footprint = 64ull << 20;
            return std::make_unique<PointerChaseGen>(p);
          default:
            p.footprint = 48ull << 20;
            return std::make_unique<ZipfGen>(p);
        }
    },
}};

const registry::Registrar<registry::WorkloadTraits> kRegisterMixBlend{{
    /*name=*/"mix-blend",
    /*display=*/"mix-blend",
    /*description=*/
    "blend of memory-intensive and compute-bound cores",
    /*aliases=*/{},
    /*uses=*/"seed",
    /*params=*/{meanGapParam(28.0)},
    /*make=*/
    [](const ParamSet &params, const WorkloadContext &ctx)
        -> std::unique_ptr<TraceGenerator> {
        SyntheticParams p;
        p.base = ctx.privateBase();
        p.seed = ctx.seed * 2003 + ctx.coreId;
        if (ctx.coreId % 2 == 0) {
            p.footprint = 8ull << 20;  // Mostly cache resident.
            p.meanGap = 40.0;
            return std::make_unique<ComputeGen>(p);
        }
        p.footprint = 64ull << 20;
        p.meanGap =
            params.getDoubleIn("mean-gap", 28.0, 1.0, 10000.0);
        if (ctx.coreId % 4 == 1)
            return std::make_unique<StreamSweepGen>(p);
        return std::make_unique<PointerChaseGen>(p);
    },
}};

const registry::Registrar<registry::WorkloadTraits> kRegisterGups{{
    /*name=*/"gups",
    /*display=*/"gups",
    /*description=*/
    "random read-modify-write updates (worst-case benign ACT rate)",
    /*aliases=*/{},
    /*uses=*/"seed",
    /*params=*/{meanGapParam(30.0)},
    /*make=*/
    [](const ParamSet &params, const WorkloadContext &ctx)
        -> std::unique_ptr<TraceGenerator> {
        SyntheticParams p;
        p.base = ctx.privateBase();
        p.footprint = 128ull << 20;
        p.seed = ctx.seed * 6007 + ctx.coreId;
        p.meanGap =
            params.getDoubleIn("mean-gap", 30.0, 1.0, 10000.0);
        return std::make_unique<GupsGen>(p);
    },
}};

const registry::Registrar<registry::WorkloadTraits> kRegisterStencil{{
    /*name=*/"stencil",
    /*display=*/"stencil",
    /*description=*/
    "multi-stream plane sweep holding many rows open",
    /*aliases=*/{},
    /*uses=*/"seed",
    /*params=*/{meanGapParam(24.0)},
    /*make=*/
    [](const ParamSet &params, const WorkloadContext &ctx)
        -> std::unique_ptr<TraceGenerator> {
        SyntheticParams p;
        p.base = ctx.privateBase();
        p.footprint = 120ull << 20;
        p.seed = ctx.seed * 7001 + ctx.coreId;
        p.meanGap =
            params.getDoubleIn("mean-gap", 24.0, 1.0, 10000.0);
        return std::make_unique<StencilGen>(p);
    },
}};

} // namespace

} // namespace mithril::workload
