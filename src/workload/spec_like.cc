#include "spec_like.hh"

#include "common/logging.hh"

namespace mithril::workload
{

namespace
{

constexpr std::uint64_t kLine = 64;

Addr
alignLine(Addr a)
{
    return a & ~(kLine - 1);
}

} // namespace

StreamSweepGen::StreamSweepGen(const SyntheticParams &params,
                               std::uint64_t object_bytes)
    : params_(params), objectBytes_(object_bytes), rng_(params.seed),
      cursor_(params.base)
{
    MITHRIL_ASSERT(params_.footprint >= objectBytes_);
    MITHRIL_ASSERT(objectBytes_ >= kLine);
}

std::optional<TraceRecord>
StreamSweepGen::next()
{
    if (produced_ >= params_.limit)
        return std::nullopt;
    ++produced_;

    if (leftInObject_ == 0) {
        // Jump to a random object start and sweep it sequentially.
        const std::uint64_t objects = params_.footprint / objectBytes_;
        const std::uint64_t pick = rng_.nextBounded(objects);
        cursor_ = alignLine(params_.base + pick * objectBytes_);
        leftInObject_ = objectBytes_ / kLine;
    }

    TraceRecord rec;
    rec.gap = rng_.nextGeometric(params_.meanGap);
    rec.addr = cursor_;
    rec.write = rng_.nextBool(params_.writeFraction);
    cursor_ += kLine;
    --leftInObject_;
    return rec;
}

PointerChaseGen::PointerChaseGen(const SyntheticParams &params)
    : params_(params), rng_(params.seed)
{
    MITHRIL_ASSERT(params_.footprint >= kLine);
}

std::optional<TraceRecord>
PointerChaseGen::next()
{
    if (produced_ >= params_.limit)
        return std::nullopt;
    ++produced_;

    TraceRecord rec;
    rec.gap = rng_.nextGeometric(params_.meanGap);
    rec.addr = alignLine(params_.base +
                         rng_.nextBounded(params_.footprint));
    rec.write = rng_.nextBool(params_.writeFraction);
    return rec;
}

ZipfGen::ZipfGen(const SyntheticParams &params, double exponent)
    : params_(params), exponent_(exponent), rng_(params.seed)
{
    MITHRIL_ASSERT(params_.footprint >= kLine);
}

std::optional<TraceRecord>
ZipfGen::next()
{
    if (produced_ >= params_.limit)
        return std::nullopt;
    ++produced_;

    const std::uint64_t lines = params_.footprint / kLine;
    TraceRecord rec;
    rec.gap = rng_.nextGeometric(params_.meanGap);
    // Zipf over lines, bit-reversed-ish scatter so hot lines land in
    // different rows rather than clustering at the footprint start.
    const std::uint64_t rank = rng_.nextZipf(lines, exponent_);
    const std::uint64_t scattered = (rank * 0x9e3779b97f4a7c15ull) %
                                    lines;
    rec.addr = alignLine(params_.base + scattered * kLine);
    rec.write = rng_.nextBool(params_.writeFraction);
    return rec;
}

ComputeGen::ComputeGen(const SyntheticParams &params)
    : params_(params), rng_(params.seed)
{
    MITHRIL_ASSERT(params_.footprint >= kLine);
}

std::optional<TraceRecord>
ComputeGen::next()
{
    if (produced_ >= params_.limit)
        return std::nullopt;
    ++produced_;

    TraceRecord rec;
    // Compute-bound: an order of magnitude larger gaps and a small,
    // cache-resident working set (most accesses never reach DRAM).
    rec.gap = rng_.nextGeometric(params_.meanGap * 12.0);
    const std::uint64_t hot = std::max<std::uint64_t>(
        kLine, params_.footprint / 64);
    rec.addr = alignLine(params_.base + rng_.nextBounded(hot));
    rec.write = rng_.nextBool(params_.writeFraction);
    return rec;
}

GupsGen::GupsGen(const SyntheticParams &params)
    : params_(params), rng_(params.seed)
{
    MITHRIL_ASSERT(params_.footprint >= kLine);
}

std::optional<TraceRecord>
GupsGen::next()
{
    if (produced_ >= params_.limit)
        return std::nullopt;
    ++produced_;

    TraceRecord rec;
    if (havePending_) {
        // Write-back half of the update; dependent, so a short gap.
        havePending_ = false;
        rec.gap = 2;
        rec.addr = pendingWrite_;
        rec.write = true;
        return rec;
    }
    rec.gap = rng_.nextGeometric(params_.meanGap);
    rec.addr = alignLine(params_.base +
                         rng_.nextBounded(params_.footprint));
    rec.write = false;
    pendingWrite_ = rec.addr;
    havePending_ = true;
    return rec;
}

StencilGen::StencilGen(const SyntheticParams &params,
                       std::uint32_t planes)
    : params_(params), planes_(planes), rng_(params.seed)
{
    MITHRIL_ASSERT(planes_ >= 2);
    MITHRIL_ASSERT(params_.footprint >= (planes_ + 1) * kLine);
}

std::optional<TraceRecord>
StencilGen::next()
{
    if (produced_ >= params_.limit)
        return std::nullopt;

    // One "iteration" touches `planes_` read streams then one write
    // stream, each offset by footprint/(planes_+1), all sharing the
    // same line cursor.
    const std::uint64_t streams = planes_ + 1;
    const std::uint64_t stream_bytes = params_.footprint / streams;
    const std::uint64_t stream_lines = stream_bytes / kLine;
    const std::uint64_t phase = produced_ % streams;
    ++produced_;
    const std::uint64_t line = cursor_ % stream_lines;

    TraceRecord rec;
    rec.gap = rng_.nextGeometric(params_.meanGap);
    rec.addr =
        alignLine(params_.base + phase * stream_bytes + line * kLine);
    rec.write = (phase == streams - 1);
    if (phase == streams - 1)
        ++cursor_;
    return rec;
}

} // namespace mithril::workload
