/**
 * @file
 * Synthetic single-thread workload generators standing in for the
 * paper's SPEC CPU2017 SimPoint traces.
 *
 * Each generator is parameterized to match a qualitative access-pattern
 * archetype the paper leans on:
 *
 *  - StreamSweepGen: lbm-style large-object sweep (Figure 8) — long
 *    sequential runs through a multi-MB footprint, so accesses
 *    concentrate on a handful of DRAM rows per small time window
 *    (~128 lines per 8KB row) while covering the footprint uniformly
 *    over large windows.
 *  - PointerChaseGen: mcf-style dependent random accesses — low row
 *    locality, high ACT-per-access rate.
 *  - ZipfGen: hot-set reuse with a Zipf row popularity profile.
 *  - ComputeGen: compute-bound filler with rare memory traffic.
 */

#ifndef MITHRIL_WORKLOAD_SPEC_LIKE_HH
#define MITHRIL_WORKLOAD_SPEC_LIKE_HH

#include "common/random.hh"
#include "workload/trace.hh"

namespace mithril::workload
{

/** Shared knobs for the synthetic generators. */
struct SyntheticParams
{
    Addr base = 0;                    //!< Start of the footprint.
    std::uint64_t footprint = 64ull << 20;
    double meanGap = 8.0;             //!< Instructions per access.
    double writeFraction = 0.3;
    std::uint64_t seed = 11;
    std::uint64_t limit = ~0ull;      //!< Max records (usually the core
                                      //!< budget gates instead).
};

/** lbm-style large-object sweep (Figure 8 pattern). */
class StreamSweepGen : public TraceGenerator
{
  public:
    /**
     * @param params Common knobs.
     * @param object_bytes Length of one sequential sweep before
     *        jumping to another object.
     */
    StreamSweepGen(const SyntheticParams &params,
                   std::uint64_t object_bytes = 2ull << 20);

    std::optional<TraceRecord> next() override;
    std::string name() const override { return "stream-sweep"; }

  private:
    SyntheticParams params_;
    std::uint64_t objectBytes_;
    Rng rng_;
    std::uint64_t produced_ = 0;
    Addr cursor_;
    std::uint64_t leftInObject_ = 0;
};

/** mcf-style dependent pointer chase. */
class PointerChaseGen : public TraceGenerator
{
  public:
    explicit PointerChaseGen(const SyntheticParams &params);

    std::optional<TraceRecord> next() override;
    std::string name() const override { return "pointer-chase"; }

  private:
    SyntheticParams params_;
    Rng rng_;
    std::uint64_t produced_ = 0;
};

/** Zipf-popular hot rows. */
class ZipfGen : public TraceGenerator
{
  public:
    ZipfGen(const SyntheticParams &params, double exponent = 0.9);

    std::optional<TraceRecord> next() override;
    std::string name() const override { return "zipf"; }

  private:
    SyntheticParams params_;
    double exponent_;
    Rng rng_;
    std::uint64_t produced_ = 0;
};

/** Compute-bound filler: large gaps, small hot footprint. */
class ComputeGen : public TraceGenerator
{
  public:
    explicit ComputeGen(const SyntheticParams &params);

    std::optional<TraceRecord> next() override;
    std::string name() const override { return "compute"; }

  private:
    SyntheticParams params_;
    Rng rng_;
    std::uint64_t produced_ = 0;
};

/**
 * GUPS-style random read-modify-write updates: every access pairs a
 * read with a write-back to the same random line (emitted as
 * alternating R/W records), with essentially no locality — the
 * worst-case ACT-per-access stream a benign workload can produce.
 */
class GupsGen : public TraceGenerator
{
  public:
    explicit GupsGen(const SyntheticParams &params);

    std::optional<TraceRecord> next() override;
    std::string name() const override { return "gups"; }

  private:
    SyntheticParams params_;
    Rng rng_;
    std::uint64_t produced_ = 0;
    Addr pendingWrite_ = 0;
    bool havePending_ = false;
};

/**
 * Stencil-style multi-stream sweep: interleaved reads from several
 * plane-offset streams plus a write stream, all advancing in lockstep
 * (the 3D 7-point stencil access shape). High per-stream row locality
 * across multiple concurrently open rows.
 */
class StencilGen : public TraceGenerator
{
  public:
    /** @param planes Read streams (center + neighbours), default 4. */
    StencilGen(const SyntheticParams &params,
               std::uint32_t planes = 4);

    std::optional<TraceRecord> next() override;
    std::string name() const override { return "stencil"; }

  private:
    SyntheticParams params_;
    std::uint32_t planes_;
    Rng rng_;
    std::uint64_t produced_ = 0;
    std::uint64_t cursor_ = 0;  //!< Line index within the sweep.
};

} // namespace mithril::workload

#endif // MITHRIL_WORKLOAD_SPEC_LIKE_HH
