/**
 * @file
 * Trace-record vocabulary and the generator interface every workload
 * implements.
 *
 * A record is one LLC-level memory access: the number of non-memory
 * instructions preceding it (the gap), the physical address, and
 * whether it writes. Attack generators mark records uncacheable so the
 * access stream reaches DRAM unchanged (real attackers use clflush or
 * cache-conflict evictions to the same effect).
 */

#ifndef MITHRIL_WORKLOAD_TRACE_HH
#define MITHRIL_WORKLOAD_TRACE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/types.hh"

namespace mithril::workload
{

/** One memory access of a core's instruction stream. */
struct TraceRecord
{
    std::uint64_t gap = 1;   //!< Instructions before this access.
    Addr addr = 0;
    bool write = false;
    bool uncached = false;   //!< Bypass the LLC (attack traffic).
};

/** Pull-based trace source. */
class TraceGenerator
{
  public:
    virtual ~TraceGenerator() = default;

    /** Next record, or nullopt when the trace is exhausted. */
    virtual std::optional<TraceRecord> next() = 0;

    /** Human-readable workload name. */
    virtual std::string name() const = 0;
};

} // namespace mithril::workload

#endif // MITHRIL_WORKLOAD_TRACE_HH
