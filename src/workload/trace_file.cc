#include "trace_file.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace mithril::workload
{

bool
parseTraceLine(const std::string &line, std::size_t line_no,
               TraceRecord &out)
{
    // Strip leading whitespace; skip blanks and comments.
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
        ++start;
    }
    if (start >= line.size() || line[start] == '#')
        return false;

    std::istringstream in(line.substr(start));
    std::string gap_str, addr_str, rw_str, flag_str;
    in >> gap_str >> addr_str >> rw_str;
    if (!in) {
        fatal("trace line %zu malformed: '%s'", line_no, line.c_str());
    }

    char *end = nullptr;
    const unsigned long long gap =
        std::strtoull(gap_str.c_str(), &end, 10);
    if (end == gap_str.c_str() || *end != '\0')
        fatal("trace line %zu: bad gap '%s'", line_no, gap_str.c_str());

    const unsigned long long addr =
        std::strtoull(addr_str.c_str(), &end, 16);
    if (end == addr_str.c_str() || *end != '\0') {
        fatal("trace line %zu: bad address '%s'", line_no,
              addr_str.c_str());
    }

    bool write;
    if (rw_str == "R" || rw_str == "r")
        write = false;
    else if (rw_str == "W" || rw_str == "w")
        write = true;
    else {
        fatal("trace line %zu: expected R or W, got '%s'", line_no,
              rw_str.c_str());
        return false;
    }

    out = TraceRecord{};
    out.gap = gap == 0 ? 1 : gap;
    out.addr = addr;
    out.write = write;
    if (in >> flag_str) {
        if (flag_str == "U" || flag_str == "u")
            out.uncached = true;
        else
            fatal("trace line %zu: unknown flag '%s'", line_no,
                  flag_str.c_str());
    }
    return true;
}

std::string
formatTraceRecord(const TraceRecord &rec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu 0x%llx %c%s",
                  static_cast<unsigned long long>(rec.gap),
                  static_cast<unsigned long long>(rec.addr),
                  rec.write ? 'W' : 'R', rec.uncached ? " U" : "");
    return buf;
}

ReplayTrace::ReplayTrace(std::vector<TraceRecord> records, bool loop,
                         std::string name)
    : records_(std::move(records)), loop_(loop), name_(std::move(name))
{
}

std::optional<TraceRecord>
ReplayTrace::next()
{
    if (cursor_ >= records_.size()) {
        if (!loop_ || records_.empty())
            return std::nullopt;
        cursor_ = 0;
    }
    return records_[cursor_++];
}

std::unique_ptr<ReplayTrace>
loadTraceFile(const std::string &path, bool loop)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file: %s", path.c_str());

    std::vector<TraceRecord> records;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        TraceRecord rec;
        if (parseTraceLine(line, line_no, rec))
            records.push_back(rec);
    }
    return std::make_unique<ReplayTrace>(std::move(records), loop,
                                         path);
}

std::size_t
writeTraceFile(const std::string &path,
               const std::vector<TraceRecord> &records,
               const std::string &header_comment)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace file: %s", path.c_str());
    if (!header_comment.empty())
        out << "# " << header_comment << "\n";
    for (const auto &rec : records)
        out << formatTraceRecord(rec) << "\n";
    return records.size();
}

std::size_t
recordTrace(TraceGenerator &gen, std::uint64_t count,
            const std::string &path)
{
    std::vector<TraceRecord> records;
    records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        auto rec = gen.next();
        if (!rec)
            break;
        records.push_back(*rec);
    }
    return writeTraceFile(path, records,
                          "recorded from " + gen.name());
}

} // namespace mithril::workload
