/**
 * @file
 * Trace file I/O: load recorded memory traces as workloads and record
 * any generator's output to a file.
 *
 * Format: one record per line,
 *
 *     <gap> <address> <R|W> [U]
 *
 * where gap is the decimal instruction gap, address is hex (0x
 * optional), R/W marks reads vs writes, and a trailing U marks the
 * record uncacheable (attack traffic). Lines starting with '#' and
 * blank lines are ignored. This is deliberately close to the
 * Ramulator/DRAMsim trace style so existing traces convert with a
 * one-line awk script.
 */

#ifndef MITHRIL_WORKLOAD_TRACE_FILE_HH
#define MITHRIL_WORKLOAD_TRACE_FILE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "workload/trace.hh"

namespace mithril::workload
{

/** Parse one trace line; returns false for comments/blank lines and
 *  fatals on malformed input (with the line number for context). */
bool parseTraceLine(const std::string &line, std::size_t line_no,
                    TraceRecord &out);

/** Render a record in the trace-file format (no newline). */
std::string formatTraceRecord(const TraceRecord &rec);

/**
 * A workload backed by an in-memory list of records (also the backing
 * store for file traces once loaded). Optionally loops.
 */
class ReplayTrace : public TraceGenerator
{
  public:
    explicit ReplayTrace(std::vector<TraceRecord> records,
                         bool loop = false,
                         std::string name = "replay");

    std::optional<TraceRecord> next() override;
    std::string name() const override { return name_; }

    std::size_t size() const { return records_.size(); }

  private:
    std::vector<TraceRecord> records_;
    bool loop_;
    std::string name_;
    std::size_t cursor_ = 0;
};

/** Load a whole trace file into a ReplayTrace (fatal on I/O error). */
std::unique_ptr<ReplayTrace> loadTraceFile(const std::string &path,
                                           bool loop = false);

/** Write records to a trace file; returns records written. */
std::size_t writeTraceFile(const std::string &path,
                           const std::vector<TraceRecord> &records,
                           const std::string &header_comment = "");

/**
 * Record the first `count` records of any generator to a file —
 * useful for snapshotting a synthetic workload into a shareable,
 * inspectable artifact.
 */
std::size_t recordTrace(TraceGenerator &gen, std::uint64_t count,
                        const std::string &path);

} // namespace mithril::workload

#endif // MITHRIL_WORKLOAD_TRACE_FILE_HH
