/**
 * @file
 * The mithril.acttrace.v1 capture/replay pin suite.
 *
 * Four layers of guarantees:
 *
 *  1. Format round-trip: write/read identity for random streams
 *     (per-bank subsequences exact, canonical order deterministic),
 *     and the seeking bank-range reader emits exactly what a
 *     BankFilterSource over the bounded linear stream does — for any
 *     range and any replay budget.
 *  2. Capture -> replay equivalence: for EVERY registered scheme, an
 *     engine run recorded through RecordingSource replays to the
 *     byte-identical RunOutcome (counters, per-bank clocks, oracle,
 *     logicOps) single-threaded and sharded at {1, 4, 16} across
 *     pool sizes; a System run captured via record= replays to one
 *     identical outcome at every shard/pool count, and capture
 *     itself is byte-deterministic.
 *  3. Corrupt inputs: truncations, bad magic, geometry mismatches,
 *     out-of-range banks/rows, payloads ending mid-record, and a
 *     fuzzed mutation corpus must all raise registry::SpecError —
 *     never UB (the CI sanitize job runs this suite under
 *     ASan/UBSan) — and a corrupt trace fails its sweep job cleanly.
 *  4. Golden: a committed trace must keep describing and replaying
 *     exactly as frozen here, guarding format drift across PRs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "engine/act_trace.hh"
#include "engine/sharded_engine.hh"
#include "registry/scheme_registry.hh"
#include "registry/source_registry.hh"
#include "runner/runner.hh"
#include "runner/sinks.hh"
#include "runner/thread_pool.hh"
#include "sim/experiment.hh"

namespace mithril
{
namespace
{

using registry::SpecError;

// ------------------------------------------------------- plumbing

dram::Geometry
smallGeometry(std::uint32_t banks = 16, std::uint32_t rows = 4096)
{
    dram::Geometry geom = dram::paperGeometry();
    geom.channels = 1;
    geom.ranksPerChannel = 1;
    geom.banksPerRank = banks;
    geom.rowsPerBank = rows;
    return geom;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "acttrace_" + name;
}

struct Rec
{
    BankId bank;
    RowId row;
    Tick tick;

    bool
    operator==(const Rec &o) const
    {
        return bank == o.bank && row == o.row && tick == o.tick;
    }
};

std::vector<Rec>
drain(engine::ActSource &source)
{
    std::vector<Rec> out;
    engine::ActBatch batch;
    for (;;) {
        batch.clear();
        const std::size_t n =
            source.fill(batch, engine::ActBatch::kCapacity);
        if (n == 0)
            break;
        for (std::size_t i = 0; i < n; ++i) {
            const engine::ActRecord r = batch.record(i);
            out.push_back({r.bank, r.row, r.tick});
        }
    }
    return out;
}

/** Random stream with in-range banks/rows and per-bank
 *  non-decreasing ticks — the writer's whole legal input domain. */
std::vector<Rec>
randomStream(std::uint64_t seed, const dram::Geometry &geom,
             std::size_t count)
{
    std::mt19937_64 rng(seed);
    std::vector<Tick> last(geom.totalBanks(), 0);
    std::vector<Rec> recs;
    recs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const auto bank =
            static_cast<BankId>(rng() % geom.totalBanks());
        const auto row =
            static_cast<RowId>(rng() % geom.rowsPerBank);
        last[bank] += static_cast<Tick>(rng() % 5000);
        recs.push_back({bank, row, last[bank]});
    }
    return recs;
}

void
writeTrace(const std::string &path, const dram::Geometry &geom,
           std::uint64_t seed, const std::string &meta,
           const std::vector<Rec> &recs)
{
    engine::ActTraceWriter writer(path, geom, seed, meta);
    for (const Rec &r : recs)
        writer.append(r.bank, r.row, r.tick);
    writer.finalize();
}

std::vector<std::vector<Rec>>
perBank(const std::vector<Rec> &recs, std::uint32_t banks)
{
    std::vector<std::vector<Rec>> out(banks);
    for (const Rec &r : recs)
        out[r.bank].push_back(r);
    return out;
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path,
          const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

void
patchU32(std::vector<std::uint8_t> &bytes, std::size_t offset,
         std::uint32_t v)
{
    ASSERT_LE(offset + 4, bytes.size());
    for (int i = 0; i < 4; ++i)
        bytes[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
readU64(const std::vector<std::uint8_t> &bytes, std::size_t offset)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(bytes[offset + i]) << (8 * i);
    return v;
}

/** Open + fully drain; the corpus driver for "parses or throws
 *  SpecError, never UB". */
void
drainFile(const std::string &path)
{
    engine::ActTraceSource source(path);
    engine::ActBatch batch;
    for (;;) {
        batch.clear();
        if (source.fill(batch, engine::ActBatch::kCapacity) == 0)
            break;
    }
}

// --------------------------------------------- round-trip identity

TEST(ActTraceRoundTrip, RandomStreamsSurviveWriteRead)
{
    const dram::Geometry geom = smallGeometry();
    // Sizes straddling the batch capacity (4096) and the writer's
    // chunk size (8192), so single-chunk, chunk-boundary, and
    // multi-chunk layouts all round-trip.
    const std::size_t sizes[] = {1, 7, 4095, 4096, 4097,
                                 8192, 8193, 20000};
    for (std::size_t size : sizes) {
        const std::string path =
            tmpPath("roundtrip_" + std::to_string(size));
        const std::vector<Rec> recs = randomStream(size, geom, size);
        writeTrace(path, geom, /*seed=*/99, "round-trip", recs);

        engine::ActTraceSource source(path);
        const engine::ActTraceInfo &info = source.info();
        EXPECT_EQ(info.records, size);
        EXPECT_EQ(info.seed, 99u);
        EXPECT_EQ(info.meta, "round-trip");
        EXPECT_TRUE(info.matches(geom));

        const std::vector<Rec> replayed = drain(source);
        ASSERT_EQ(replayed.size(), recs.size()) << "size " << size;

        // Chunking canonicalizes cross-bank order; the per-bank
        // subsequences must survive exactly.
        const auto want = perBank(recs, geom.totalBanks());
        const auto got = perBank(replayed, geom.totalBanks());
        for (std::uint32_t b = 0; b < geom.totalBanks(); ++b) {
            EXPECT_EQ(got[b], want[b])
                << "bank " << b << " size " << size;
            EXPECT_EQ(info.perBank[b], want[b].size());
        }

        // ...and the canonical order itself is deterministic.
        engine::ActTraceSource again(path);
        EXPECT_EQ(drain(again), replayed) << "size " << size;
    }
}

TEST(ActTraceRoundTrip, EmptyTraceIsValid)
{
    const std::string path = tmpPath("empty");
    writeTrace(path, smallGeometry(), 7, "", {});
    engine::ActTraceSource source(path);
    EXPECT_EQ(source.info().records, 0u);
    EXPECT_EQ(source.info().chunks, 0u);
    EXPECT_TRUE(drain(source).empty());
}

TEST(ActTraceRoundTrip, TicksMonotonePerBankNotGlobally)
{
    // Per-bank monotonicity is the format's invariant; global ticks
    // may interleave arbitrarily (two banks running ahead of each
    // other), which is exactly what a System capture produces.
    const dram::Geometry geom = smallGeometry(2);
    const std::vector<Rec> recs = {
        {0, 10, 100}, {1, 20, 5}, {0, 11, 100}, {1, 21, 900},
        {0, 12, 250},
    };
    const std::string path = tmpPath("perbank_ticks");
    writeTrace(path, geom, 1, "", recs);
    engine::ActTraceSource source(path);
    EXPECT_EQ(perBank(drain(source), 2), perBank(recs, 2));
}

// ------------------------------------- seeking vs filtered linear

TEST(ActTraceSeek, BankRangeEqualsFilteredLinearScan)
{
    const dram::Geometry geom = smallGeometry();
    const std::size_t total = 20000;
    const std::string path = tmpPath("seek");
    writeTrace(path, geom, 3, "seek", randomStream(3, geom, total));

    const std::pair<BankId, BankId> ranges[] = {
        {0, 16}, {0, 1}, {3, 7}, {15, 16}, {5, 5}};
    const std::uint64_t budgets[] = {0,     1,     777,  8192,
                                     8200,  total, total + 5,
                                     ~0ull};
    for (const auto &[lo, hi] : ranges) {
        for (std::uint64_t budget : budgets) {
            engine::BankFilterSource filtered(
                std::make_unique<engine::ActTraceSource>(path), lo,
                hi, budget);
            engine::ActTraceSource seeking(path, lo, hi, budget);
            EXPECT_EQ(drain(seeking), drain(filtered))
                << "range [" << lo << "," << hi << ") budget "
                << budget;
        }
    }
}

TEST(ActTraceSeek, ShardSliceIsTheNativeSeekingReader)
{
    const dram::Geometry geom = smallGeometry(8);
    const std::string path = tmpPath("slice");
    writeTrace(path, geom, 4, "", randomStream(4, geom, 9000));

    engine::ActTraceSource full(path);
    auto slice = full.shardSlice(2, 5, 4000);
    ASSERT_NE(slice, nullptr);

    engine::BankFilterSource filtered(
        std::make_unique<engine::ActTraceSource>(path), 2, 5, 4000);
    EXPECT_EQ(drain(*slice), drain(filtered));

    // Slicing must not have disturbed the full reader.
    EXPECT_EQ(drain(full).size(), 9000u);
}

// --------------------------------- capture -> replay, every scheme

constexpr std::uint32_t kBanks = 16;
constexpr std::uint32_t kFlipTh = 3125;
constexpr std::uint64_t kActs = 60000;

engine::EngineConfig
replayEngineConfig()
{
    engine::EngineConfig cfg;
    cfg.timing = dram::ddr5_4800();
    cfg.geometry = smallGeometry(kBanks, 65536);
    cfg.flipTh = kFlipTh;
    return cfg;
}

std::unique_ptr<trackers::RhProtection>
makeTracker(const std::string &scheme)
{
    registry::SchemeKnobs knobs;
    knobs.flipTh = kFlipTh;
    return registry::makeScheme(
        scheme, knobs.toParams(),
        {dram::ddr5_4800(), smallGeometry(kBanks, 65536)});
}

std::unique_ptr<engine::ActSource>
makeAttackStream()
{
    ParamSet params;
    params.set("attack", "multi-sided");
    return registry::makeActSource(
        "attack", params,
        {dram::ddr5_4800(), smallGeometry(kBanks, 65536), kFlipTh,
         /*seed=*/7});
}

/** Everything a replay must reproduce byte for byte. */
struct Outcome
{
    std::uint64_t acts = 0, refs = 0, rfms = 0, preventive = 0,
                  stalls = 0;
    double maxDisturbance = 0.0;
    std::uint64_t bitFlips = 0, flippedRows = 0, logicOps = 0;
    std::vector<std::uint64_t> bankActs, bankPrev;
    std::vector<Tick> bankNow;

    bool
    operator==(const Outcome &o) const
    {
        return acts == o.acts && refs == o.refs && rfms == o.rfms &&
               preventive == o.preventive && stalls == o.stalls &&
               maxDisturbance == o.maxDisturbance &&
               bitFlips == o.bitFlips &&
               flippedRows == o.flippedRows &&
               logicOps == o.logicOps && bankActs == o.bankActs &&
               bankPrev == o.bankPrev && bankNow == o.bankNow;
    }
};

std::ostream &
operator<<(std::ostream &os, const Outcome &o)
{
    return os << "acts=" << o.acts << " refs=" << o.refs
              << " rfms=" << o.rfms << " prev=" << o.preventive
              << " stalls=" << o.stalls
              << " maxDist=" << o.maxDisturbance
              << " flips=" << o.bitFlips
              << " flippedRows=" << o.flippedRows
              << " logicOps=" << o.logicOps;
}

Outcome
outcomeOf(const engine::ActStreamEngine &eng,
          const trackers::RhProtection *tracker)
{
    Outcome o;
    o.acts = eng.acts();
    o.refs = eng.refs();
    o.rfms = eng.rfms();
    o.preventive = eng.preventiveRefreshes();
    o.stalls = eng.throttleStalls();
    o.maxDisturbance = eng.oracle().maxDisturbanceEver();
    o.bitFlips = eng.oracle().bitFlips();
    o.flippedRows = eng.oracle().flippedRows();
    o.logicOps = tracker ? tracker->logicOps() : 0;
    for (BankId b = 0; b < kBanks; ++b) {
        o.bankActs.push_back(eng.actsAt(b));
        o.bankPrev.push_back(eng.preventiveRefreshesAt(b));
        o.bankNow.push_back(eng.now(b));
    }
    return o;
}

/** Live engine run over the attack stream, captured to `path`. */
Outcome
runLiveRecorded(const std::string &scheme, const std::string &path)
{
    auto tracker = makeTracker(scheme);
    engine::ActStreamEngine eng(replayEngineConfig(), tracker.get());
    engine::ActTraceWriter writer(path, smallGeometry(kBanks, 65536),
                                  /*seed=*/7, "live:" + scheme);
    engine::RecordingSource source(makeAttackStream(), &writer);
    eng.run(source, kActs);
    writer.finalize();
    EXPECT_EQ(writer.records(), kActs);
    return outcomeOf(eng, tracker.get());
}

Outcome
replaySingle(const std::string &scheme, const std::string &path)
{
    auto tracker = makeTracker(scheme);
    engine::ActStreamEngine eng(replayEngineConfig(), tracker.get());
    engine::ActTraceSource source(path);
    eng.run(source, kActs);
    return outcomeOf(eng, tracker.get());
}

Outcome
replaySharded(const std::string &scheme, const std::string &path,
              std::uint32_t shards,
              runner::ThreadPool *pool = nullptr)
{
    engine::ShardedEngineConfig cfg;
    cfg.engine = replayEngineConfig();
    cfg.shards = shards;
    cfg.pool = pool;
    engine::ShardedActStreamEngine eng(
        cfg, [&] { return makeTracker(scheme); });
    eng.run([&] { return std::make_unique<engine::ActTraceSource>(
                      path); },
            kActs);

    Outcome o;
    o.acts = eng.acts();
    o.refs = eng.refs();
    o.rfms = eng.rfms();
    o.preventive = eng.preventiveRefreshes();
    o.stalls = eng.throttleStalls();
    o.maxDisturbance = eng.maxDisturbanceEver();
    o.bitFlips = eng.bitFlips();
    o.flippedRows = eng.flippedRows();
    o.logicOps = eng.logicOps();
    for (BankId b = 0; b < kBanks; ++b) {
        o.bankActs.push_back(eng.actsAt(b));
        o.bankPrev.push_back(eng.preventiveRefreshesAt(b));
        o.bankNow.push_back(eng.now(b));
    }
    return o;
}

class CaptureReplayEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CaptureReplayEquivalence, ReplayMatchesLiveRunExactly)
{
    const std::string scheme = GetParam();
    const std::string path = tmpPath("capture_" + scheme);
    const Outcome live = runLiveRecorded(scheme, path);
    EXPECT_EQ(live.acts, kActs) << scheme;

    const Outcome single = replaySingle(scheme, path);
    EXPECT_TRUE(single == live)
        << scheme << "\n  replay: " << single
        << "\n  live:   " << live;

    runner::ThreadPool pool(3);
    for (std::uint32_t shards : {1u, 4u, 16u}) {
        const Outcome sharded = replaySharded(
            scheme, path, shards, shards == 4 ? &pool : nullptr);
        EXPECT_TRUE(sharded == live)
            << scheme << " shards=" << shards
            << "\n  sharded: " << sharded
            << "\n  live:    " << live;
    }
}

std::string
schemeCaseName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string s = info.param;
    for (auto &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredSchemes,
                         CaptureReplayEquivalence,
                         ::testing::ValuesIn(
                             registry::schemeRegistry().names()),
                         schemeCaseName);

// --------------------------------------- System capture -> replay

/** Tiny attacked System run; record= taps the controller's ACTs. */
sim::ExperimentSpec
systemCaptureSpec(const std::string &record_path)
{
    sim::ExperimentSpec spec;
    spec.scheme = "none";
    spec.workload = "mix-high";
    spec.attack = "multi-sided";
    spec.cores = 2;
    spec.instrPerCore = 6000;
    spec.record = record_path;
    return spec;
}

sim::ExperimentSpec
replaySpec(const std::string &scheme, const std::string &trace_path,
           std::uint64_t acts, std::uint32_t shards)
{
    sim::ExperimentSpec spec;
    spec.scheme = scheme;
    spec.attack = "none";
    spec.source = "act-trace";
    spec.extras.set("trace", trace_path);
    spec.engineActs = acts;
    spec.shards = shards;
    return spec;
}

TEST(SystemCaptureReplay, EverySchemeReplaysShardInvariant)
{
    const std::string path = tmpPath("system_capture");
    const sim::RunMetrics live =
        sim::runExperiment(systemCaptureSpec(path));
    ASSERT_GT(live.acts, 0u);

    const engine::ActTraceInfo info = engine::actTraceInfo(path);
    // The capture is exactly the tracker-observed ACT stream.
    EXPECT_EQ(info.records, live.acts);
    EXPECT_TRUE(info.matches(dram::paperGeometry()));

    for (const std::string &scheme :
         registry::schemeRegistry().names()) {
        sim::RunMetrics first;
        bool have_first = false;
        for (std::uint32_t shards : {1u, 4u, 16u}) {
            const sim::RunMetrics m = sim::runExperiment(
                replaySpec(scheme, path, info.records, shards));
            EXPECT_EQ(m.acts, info.records) << scheme;
            if (!have_first) {
                first = m;
                have_first = true;
                continue;
            }
            // One outcome per scheme, no matter how it is sharded.
            EXPECT_EQ(m.acts, first.acts) << scheme;
            EXPECT_EQ(m.rfmIssued, first.rfmIssued) << scheme;
            EXPECT_EQ(m.preventiveRefreshes,
                      first.preventiveRefreshes)
                << scheme;
            EXPECT_EQ(m.throttleStalls, first.throttleStalls)
                << scheme;
            EXPECT_EQ(m.bitFlips, first.bitFlips) << scheme;
            EXPECT_EQ(m.maxDisturbance, first.maxDisturbance)
                << scheme;
            EXPECT_EQ(m.simTicks, first.simTicks) << scheme;
        }
    }
}

TEST(SystemCaptureReplay, CaptureIsByteDeterministic)
{
    // Same path twice: the meta line embeds the spec (including the
    // record path), so determinism is judged on identical specs.
    const std::string path = tmpPath("system_capture_det");
    sim::runExperiment(systemCaptureSpec(path));
    const std::vector<std::uint8_t> first = readFile(path);
    sim::runExperiment(systemCaptureSpec(path));
    EXPECT_EQ(readFile(path), first);
}

TEST(SystemCaptureReplay, RecordingDoesNotPerturbTheRun)
{
    sim::ExperimentSpec plain = systemCaptureSpec("");
    plain.record.clear();
    const sim::RunMetrics bare = sim::runExperiment(plain);
    const sim::RunMetrics taped = sim::runExperiment(
        systemCaptureSpec(tmpPath("system_capture_tap")));
    EXPECT_EQ(bare.acts, taped.acts);
    EXPECT_EQ(bare.simTicks, taped.simTicks);
    EXPECT_DOUBLE_EQ(bare.aggIpc, taped.aggIpc);
}

TEST(EngineCaptureReplay, RunExperimentRecordThenReplayAgrees)
{
    // The runExperiment-level engine capture path: record= on a
    // source= run captures the exact stream prefix the run consumed,
    // and a source=act-trace run of the same scheme reproduces it.
    const std::string path = tmpPath("engine_record");
    sim::ExperimentSpec rec;
    rec.scheme = "graphene";
    rec.attack = "multi-sided";
    rec.source = "attack";
    rec.engineActs = 30000;
    rec.record = path;
    const sim::RunMetrics live = sim::runExperiment(rec);
    EXPECT_EQ(live.acts, 30000u);
    EXPECT_EQ(engine::actTraceInfo(path).records, 30000u);

    for (std::uint32_t shards : {1u, 4u}) {
        const sim::RunMetrics replay = sim::runExperiment(
            replaySpec("graphene", path, 30000, shards));
        EXPECT_EQ(replay.acts, live.acts);
        EXPECT_EQ(replay.rfmIssued, live.rfmIssued);
        EXPECT_EQ(replay.preventiveRefreshes,
                  live.preventiveRefreshes);
        EXPECT_EQ(replay.bitFlips, live.bitFlips);
        EXPECT_EQ(replay.maxDisturbance, live.maxDisturbance);
        EXPECT_EQ(replay.simTicks, live.simTicks);
    }
}

// ------------------------------------------------ writer validation

TEST(ActTraceWriter, RejectsIllegalAppends)
{
    const dram::Geometry geom = smallGeometry(4, 100);
    {
        engine::ActTraceWriter writer(tmpPath("w_bank"), geom, 1, "");
        EXPECT_THROW(writer.append(4, 0, 0), SpecError);
    }
    {
        engine::ActTraceWriter writer(tmpPath("w_row"), geom, 1, "");
        EXPECT_THROW(writer.append(0, 100, 0), SpecError);
    }
    {
        engine::ActTraceWriter writer(tmpPath("w_tick"), geom, 1, "");
        writer.append(0, 1, 500);
        writer.append(0, 2, 500);  // Equal ticks are legal...
        EXPECT_THROW(writer.append(0, 3, 499), SpecError);  // ...regressions not.
        writer.append(1, 1, 10);   // Other banks are independent.
    }
    {
        engine::ActTraceWriter writer(tmpPath("w_neg"), geom, 1, "");
        EXPECT_THROW(writer.append(0, 1, -1), SpecError);
    }
    {
        engine::ActTraceWriter writer(tmpPath("w_fin"), geom, 1, "");
        writer.append(0, 1, 0);
        writer.finalize();
        writer.finalize();  // Idempotent.
        EXPECT_THROW(writer.append(0, 2, 1), SpecError);
    }
    EXPECT_THROW(
        engine::ActTraceWriter("/nonexistent-dir/x.acttrace", geom,
                               1, ""),
        SpecError);
}

TEST(ActTraceWriter, UnfinalizedFileDoesNotParse)
{
    // A capture that dies before finalize() — here: the writer is
    // destroyed mid-capture, as exception unwind would — must NOT
    // leave a parseable file. The destructor closes without writing
    // the footer instead of "helpfully" finalizing partial data.
    const std::string path = tmpPath("w_crash");
    std::string captured;
    setLogCapture(&captured);
    {
        engine::ActTraceWriter writer(path, smallGeometry(), 1, "");
        for (int i = 0; i < 10000; ++i)
            writer.append(0, 1, i);
        // No finalize().
    }
    setLogCapture(nullptr);
    EXPECT_NE(captured.find("abandoned without finalize"),
              std::string::npos)
        << captured;
    EXPECT_THROW(engine::actTraceInfo(path), SpecError);
}

// ------------------------------------------------- corrupt inputs

/** One small, fully understood trace for surgical byte patches:
 *  empty meta, so the first chunk header sits at offset 48 and the
 *  first block header at 56. */
std::string
patchableTrace(const std::string &name, const std::vector<Rec> &recs,
               std::uint32_t banks = 4, std::uint32_t rows = 4096)
{
    const std::string path = tmpPath(name);
    writeTrace(path, smallGeometry(banks, rows), 1, "", recs);
    return path;
}

constexpr std::size_t kHeaderBytes = 48;  // magic+geometry+seed+len.

TEST(ActTraceCorrupt, TruncatedHeaderAndFooter)
{
    const std::string path =
        patchableTrace("c_trunc", randomStream(5, smallGeometry(4), 500));
    const std::vector<std::uint8_t> valid = readFile(path);
    ASSERT_GT(valid.size(), kHeaderBytes);

    const std::size_t cuts[] = {0,
                                5,
                                19,
                                20,
                                30,
                                kHeaderBytes - 1,
                                kHeaderBytes + 5,
                                valid.size() / 2,
                                valid.size() - 25,
                                valid.size() - 8,
                                valid.size() - 1};
    for (std::size_t cut : cuts) {
        std::vector<std::uint8_t> bytes(valid.begin(),
                                        valid.begin() +
                                            static_cast<long>(cut));
        const std::string mutated = tmpPath("c_trunc_cut");
        writeFile(mutated, bytes);
        EXPECT_THROW(drainFile(mutated), SpecError) << "cut " << cut;
    }
}

TEST(ActTraceCorrupt, BadMagicRejected)
{
    const std::string path =
        patchableTrace("c_magic", {{0, 1, 0}, {1, 2, 3}});
    std::vector<std::uint8_t> bytes = readFile(path);
    bytes[0] ^= 0xff;
    writeFile(path, bytes);
    EXPECT_THROW(engine::actTraceInfo(path), SpecError);
}

TEST(ActTraceCorrupt, GeometryMismatchRejectedAtTheRegistry)
{
    const std::string path =
        patchableTrace("c_geom", {{0, 1, 0}}, /*banks=*/4);
    ParamSet params;
    params.set("trace", path);
    const dram::Geometry other = smallGeometry(/*banks=*/8);
    try {
        registry::makeActSource("act-trace", params,
                                {dram::ddr5_4800(), other, 6250, 42});
        FAIL() << "geometry mismatch not detected";
    } catch (const SpecError &err) {
        EXPECT_NE(std::string(err.what()).find("geometry mismatch"),
                  std::string::npos)
            << err.what();
    }

    // ...and the matching geometry is accepted.
    const dram::Geometry same = smallGeometry(4);
    EXPECT_NE(registry::makeActSource(
                  "act-trace", params,
                  {dram::ddr5_4800(), same, 6250, 42}),
              nullptr);
}

TEST(ActTraceCorrupt, OutOfRangeBankRejected)
{
    const std::string path =
        patchableTrace("c_bank", {{0, 1, 0}, {0, 2, 5}});
    std::vector<std::uint8_t> bytes = readFile(path);
    // Index block entries start 12 bytes into the index (magic +
    // chunk count) plus 12 per chunk header entry; the bank field is
    // first.
    const std::uint64_t index_offset =
        readU64(bytes, bytes.size() - 24);
    patchU32(bytes, static_cast<std::size_t>(index_offset) + 24,
             0xffff);
    writeFile(path, bytes);
    try {
        drainFile(path);
        FAIL() << "out-of-range bank not detected";
    } catch (const SpecError &err) {
        EXPECT_NE(std::string(err.what())
                      .find("outside the declared geometry"),
                  std::string::npos)
            << err.what();
    }
}

TEST(ActTraceCorrupt, OutOfRangeRowRejected)
{
    // Shrink the declared geometry under the rows actually encoded:
    // decode must reject the row, not hand it to the engine.
    const std::string path =
        patchableTrace("c_row", {{0, 3000, 0}, {0, 3001, 5}});
    std::vector<std::uint8_t> bytes = readFile(path);
    patchU32(bytes, 32, /*rowsPerBank=*/16);
    writeFile(path, bytes);
    try {
        drainFile(path);
        FAIL() << "out-of-range row not detected";
    } catch (const SpecError &err) {
        EXPECT_NE(std::string(err.what())
                      .find("outside the declared geometry"),
                  std::string::npos)
            << err.what();
    }
}

TEST(ActTraceCorrupt, PayloadEndingMidRecordRejected)
{
    // One record (row=5, tick=7): payload is exactly two 1-byte
    // varints at offset 68. Setting the continuation bit on the
    // first makes the row varint swallow the tick byte and the tick
    // read run off the payload.
    const std::string path = patchableTrace("c_midrec", {{0, 5, 7}});
    std::vector<std::uint8_t> bytes = readFile(path);
    ASSERT_EQ(bytes[68], 5u);
    ASSERT_EQ(bytes[69], 7u);
    bytes[68] |= 0x80;
    writeFile(path, bytes);
    try {
        drainFile(path);
        FAIL() << "mid-record payload end not detected";
    } catch (const SpecError &err) {
        EXPECT_NE(std::string(err.what()).find("ends mid-record"),
                  std::string::npos)
            << err.what();
    }
}

TEST(ActTraceCorrupt, TrailingPayloadBytesRejected)
{
    // Two same-bank records = 4 payload bytes. Claim only one record
    // everywhere (block header, index, footer): the sizes stay
    // consistent, but decoding leaves 2 undecoded bytes.
    const std::string path =
        patchableTrace("c_trail", {{0, 5, 7}, {0, 6, 9}});
    std::vector<std::uint8_t> bytes = readFile(path);
    const std::uint64_t index_offset =
        readU64(bytes, bytes.size() - 24);
    patchU32(bytes, 60, 1);  // Block header count.
    patchU32(bytes, static_cast<std::size_t>(index_offset) + 28,
             1);             // Index block count.
    patchU32(bytes, bytes.size() - 16, 1);  // Footer records (lo).
    patchU32(bytes, bytes.size() - 12, 0);  // Footer records (hi).
    writeFile(path, bytes);
    try {
        drainFile(path);
        FAIL() << "trailing payload bytes not detected";
    } catch (const SpecError &err) {
        EXPECT_NE(std::string(err.what()).find("trailing bytes"),
                  std::string::npos)
            << err.what();
    }
}

TEST(ActTraceCorrupt, ImplausibleGeometryRejectedBeforeAllocating)
{
    // A crafted header declaring billions of banks must die as a
    // SpecError at parse, not as a multi-gigabyte perBank allocation
    // (which would escape the sweep runner's per-job error
    // handling) — including values whose uint32 bank product wraps
    // back to something small.
    const std::string path = patchableTrace("c_geom_huge", {{0, 1, 0}});
    for (std::uint32_t banks : {0xf0000000u, 0x40000000u}) {
        std::vector<std::uint8_t> bytes = readFile(path);
        patchU32(bytes, 28, banks);  // banksPerRank field.
        const std::string mutated = tmpPath("c_geom_huge_mut");
        writeFile(mutated, bytes);
        try {
            drainFile(mutated);
            FAIL() << "implausible geometry not detected";
        } catch (const SpecError &err) {
            EXPECT_NE(std::string(err.what())
                          .find("implausible geometry"),
                      std::string::npos)
                << err.what();
        }
    }
}

TEST(ActTraceCorrupt, TrailingIndexBytesRejected)
{
    // Garbage spliced between the last index entry and the footer
    // leaves every offset/count check satisfied; only a "the index
    // must be fully consumed" check can catch it.
    const std::string path =
        patchableTrace("c_idxtrail", {{0, 5, 7}, {1, 6, 9}});
    std::vector<std::uint8_t> bytes = readFile(path);
    const std::vector<std::uint8_t> footer(bytes.end() - 24,
                                           bytes.end());
    bytes.resize(bytes.size() - 24);
    bytes.insert(bytes.end(), {0xde, 0xad, 0xbe, 0xef});
    bytes.insert(bytes.end(), footer.begin(), footer.end());
    writeFile(path, bytes);
    try {
        drainFile(path);
        FAIL() << "trailing index bytes not detected";
    } catch (const SpecError &err) {
        EXPECT_NE(std::string(err.what()).find("trailing bytes"),
                  std::string::npos)
            << err.what();
    }
}

TEST(ActTraceCorrupt, FuzzedMutationsNeverEscapeSpecError)
{
    // The ASan-run corpus (the CI sanitize job executes this test
    // under ASan/UBSan): deterministic mutations of a valid trace
    // must either parse and drain cleanly or throw SpecError. Any
    // other exception, crash, hang, or sanitizer report is a format
    // hole.
    const dram::Geometry geom = smallGeometry(8);
    const std::string valid_path = tmpPath("fuzz_valid");
    writeTrace(valid_path, geom, 11, "fuzz",
               randomStream(11, geom, 3000));
    const std::vector<std::uint8_t> valid = readFile(valid_path);

    std::mt19937_64 rng(2026);
    const std::string path = tmpPath("fuzz_case");
    std::size_t parsed = 0, rejected = 0;
    for (int iter = 0; iter < 300; ++iter) {
        std::vector<std::uint8_t> bytes = valid;
        switch (rng() % 4) {
          case 0:  // Truncate anywhere.
            bytes.resize(rng() % (bytes.size() + 1));
            break;
          case 1:  // Flip one byte.
            if (!bytes.empty())
                bytes[rng() % bytes.size()] ^=
                    static_cast<std::uint8_t>(1 + rng() % 255);
            break;
          case 2: {  // Overwrite a random u32.
            if (bytes.size() >= 4) {
                const std::size_t off = rng() % (bytes.size() - 3);
                for (int i = 0; i < 4; ++i)
                    bytes[off + i] =
                        static_cast<std::uint8_t>(rng());
            }
            break;
          }
          default: {  // Splice a random slice over another offset.
            if (bytes.size() >= 16) {
                const std::size_t n = 1 + rng() % 64;
                const std::size_t src =
                    rng() % (bytes.size() - std::min(
                                                n, bytes.size() - 1));
                const std::size_t dst =
                    rng() % (bytes.size() - std::min(
                                                n, bytes.size() - 1));
                for (std::size_t i = 0;
                     i < n && src + i < bytes.size() &&
                     dst + i < bytes.size();
                     ++i)
                    bytes[dst + i] = bytes[src + i];
            }
            break;
          }
        }
        writeFile(path, bytes);
        try {
            drainFile(path);
            ++parsed;
        } catch (const SpecError &) {
            ++rejected;
        }
    }
    // The corpus must actually exercise the rejection paths (and a
    // benign mutation — e.g. inside the meta string — may parse).
    EXPECT_GT(rejected, 100u);
    EXPECT_EQ(parsed + rejected, 300u);
}

// ----------------------------------------------- runner integration

TEST(ActTraceRunner, CorruptTraceFailsItsJobNotTheSweep)
{
    const std::string path = tmpPath("runner_corrupt");
    writeFile(path, {'n', 'o', 't', ' ', 'a', ' ', 't', 'r', 'a',
                     'c', 'e'});

    runner::SweepSpec spec;
    spec.schemes = {"mithril", "para"};
    spec.sources = {"act-trace"};
    spec.tunables.set("trace", path);
    spec.engineActs = 1000;

    runner::RunnerOptions options;
    options.jobs = 1;
    options.progress = false;
    const runner::SweepResult result =
        runner::SweepRunner(options).run(spec);

    ASSERT_EQ(result.results.size(), 2u);
    EXPECT_EQ(result.failedCount(), 2u);
    for (const runner::JobResult &job : result.results) {
        EXPECT_TRUE(job.failed());
        EXPECT_NE(job.error.find("act-trace"), std::string::npos)
            << job.error;
    }

    std::ostringstream os;
    runner::TableSink().write(result, os);
    EXPECT_NE(os.str().find("FAILED"), std::string::npos) << os.str();
}

TEST(ActTraceRunner, RecordNeedsASingleJobGrid)
{
    setLogThrowOnFatal(true);
    EXPECT_THROW(runner::SweepSpec::fromParams(ParamSet::fromString(
                     "schemes=mithril,para record=x.acttrace")),
                 std::runtime_error);
    // A single-job grid is accepted and carries the path per job.
    const runner::SweepSpec ok = runner::SweepSpec::fromParams(
        ParamSet::fromString("schemes=mithril record=x.acttrace"));
    setLogThrowOnFatal(false);
    const std::vector<runner::Job> jobs = ok.expand();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].spec.record, "x.acttrace");
}

TEST(ActTraceRunner, RecordingOverTheReplayedTraceIsRejected)
{
    // record= onto the trace= being replayed would truncate the
    // input before the reader opens it; the job must fail before any
    // byte is written.
    const std::string path = tmpPath("record_over_trace");
    writeTrace(path, dram::paperGeometry(), 1, "",
               {{0, 1, 0}, {1, 2, 3}});
    const std::vector<std::uint8_t> before = readFile(path);

    sim::ExperimentSpec spec = replaySpec("mithril", path, 2, 0);
    spec.record = path;
    EXPECT_THROW(sim::runExperiment(spec), SpecError);
    EXPECT_EQ(readFile(path), before);  // Input untouched.

    // Aliased spellings of the same file must be caught too (the
    // guard compares file identity, not strings).
    const std::string aliased = tmpPath("record_over_trace_link");
    std::remove(aliased.c_str());
    ASSERT_EQ(
        std::system(("ln -s " + path + " " + aliased).c_str()), 0);
    spec.record = aliased;
    EXPECT_THROW(sim::runExperiment(spec), SpecError);
    EXPECT_EQ(readFile(path), before);

    // A different output path re-captures the replay fine.
    spec.record = tmpPath("record_over_trace_copy");
    const sim::RunMetrics m = sim::runExperiment(spec);
    EXPECT_EQ(m.acts, 2u);
    EXPECT_EQ(engine::actTraceInfo(spec.record).records, 2u);

    // The guard also covers the instruction-trace source's input
    // ("trace-file="), not just act-trace's "trace=".
    const std::string instr_trace = tmpPath("record_over_instr.trc");
    {
        std::ofstream out(instr_trace);
        out << "1 0x1000 R\n1 0x2000 R\n";
    }
    sim::ExperimentSpec tf;
    tf.scheme = "mithril";
    tf.source = "trace-file";
    tf.extras.set("trace-file", instr_trace);
    tf.engineActs = 2;
    tf.record = instr_trace;
    EXPECT_THROW(sim::runExperiment(tf), SpecError);
    EXPECT_FALSE(readFile(instr_trace).empty());  // Not truncated.
}

TEST(ActTraceRunner, RecordRoundTripsThroughDescribe)
{
    sim::ExperimentSpec spec;
    spec.record = "foo.acttrace";
    const sim::ExperimentSpec back = sim::ExperimentSpec::parse(
        ParamSet::fromString(spec.describe()));
    EXPECT_EQ(back.record, "foo.acttrace");
    // ...and the default stays out of describe(), keeping the
    // canonical line of record-free specs unchanged.
    EXPECT_EQ(sim::ExperimentSpec{}.describe().find("record="),
              std::string::npos);
}

// ------------------------------------------------- recording source

TEST(RecordingSource, TeesWithoutDisturbingTheStream)
{
    const dram::Geometry geom = smallGeometry(1, 4096);
    const std::string path = tmpPath("tee");
    auto make_inner = [] {
        return std::make_unique<engine::CallbackSource>(
            /*count=*/10000, [](std::uint64_t i) {
                return static_cast<RowId>(100 + i % 37);
            });
    };

    std::vector<Rec> direct;
    {
        auto inner = make_inner();
        direct = drain(*inner);
    }

    std::vector<Rec> teed;
    {
        engine::ActTraceWriter writer(path, geom, 1, "tee");
        engine::RecordingSource source(make_inner(), &writer);
        teed = drain(source);
        writer.finalize();
    }
    EXPECT_EQ(teed, direct);

    engine::ActTraceSource replay(path);
    EXPECT_EQ(drain(replay), direct);
}

// --------------------------------------------------------- golden

// Frozen replay outcome of the committed golden trace under Mithril
// (paper geometry, flip=6250). Regenerate only with the golden trace
// itself, for a deliberate format or engine-semantics change.
constexpr std::uint64_t kFrozenRfms = 20;
constexpr std::uint64_t kFrozenPreventive = 8;
constexpr std::uint64_t kFrozenBitFlips = 0;
constexpr Tick kFrozenSimTicks = 39916400;

const std::string kGoldenTrace = std::string(MITHRIL_SOURCE_DIR) +
                                 "/tests/golden/acttrace_v1.bin";
const std::string kGoldenDescribe =
    std::string(MITHRIL_SOURCE_DIR) +
    "/tests/golden/acttrace_v1.describe.txt";

TEST(ActTraceGolden, DescribeMatchesCommittedDump)
{
    const engine::ActTraceInfo info =
        engine::actTraceInfo(kGoldenTrace);
    std::ifstream golden(kGoldenDescribe);
    ASSERT_TRUE(golden.good()) << kGoldenDescribe;
    std::stringstream want;
    want << golden.rdbuf();
    EXPECT_EQ(info.describe(), want.str())
        << "Format drift: regenerate tests/golden/acttrace_v1.* "
           "ONLY for a deliberate, versioned format change.";
}

TEST(ActTraceGolden, ReplayMatchesFrozenOutcome)
{
    // The committed trace replayed under Mithril at the paper
    // geometry must reproduce this frozen outcome on every platform
    // and every future PR. Shard count must not matter.
    const engine::ActTraceInfo info =
        engine::actTraceInfo(kGoldenTrace);
    ASSERT_EQ(info.records, 3000u);

    sim::RunMetrics first;
    bool have_first = false;
    for (std::uint32_t shards : {1u, 4u}) {
        const sim::RunMetrics m = sim::runExperiment(
            replaySpec("mithril", kGoldenTrace, 3000, shards));
        EXPECT_EQ(m.acts, 3000u);
        if (!have_first) {
            first = m;
            have_first = true;
            continue;
        }
        EXPECT_EQ(m.rfmIssued, first.rfmIssued);
        EXPECT_EQ(m.preventiveRefreshes, first.preventiveRefreshes);
        EXPECT_EQ(m.simTicks, first.simTicks);
    }
    // Frozen values (regenerate only on a deliberate format or
    // engine-semantics change, with the golden trace).
    EXPECT_EQ(first.acts, 3000u);
    EXPECT_EQ(first.rfmIssued, kFrozenRfms);
    EXPECT_EQ(first.preventiveRefreshes, kFrozenPreventive);
    EXPECT_EQ(first.bitFlips, kFrozenBitFlips);
    EXPECT_EQ(first.simTicks, kFrozenSimTicks);
}

} // namespace
} // namespace mithril
