/**
 * @file
 * Tests for the analytic models: PARFM failure probability
 * (Appendix C), the Table IV area model, and the Figure 2
 * ARR-vs-RFM safe-FlipTH model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/area_model.hh"
#include "analysis/arr_vs_rfm.hh"
#include "analysis/parfm_failure.hh"
#include "dram/timing.hh"

namespace mithril::analysis
{
namespace
{

class AnalysisTest : public ::testing::Test
{
  protected:
    dram::Timing timing_ = dram::ddr5_4800();
    dram::Geometry geom_ = dram::paperGeometry();
};

// ------------------------------------------------------ PARFM failure

TEST_F(AnalysisTest, CostEffectivenessMonotonicallyDecreases)
{
    // Equation 5: the optimal attack puts one ACT per row.
    double last = 1.0;
    for (std::uint32_t j = 1; j <= 64; ++j) {
        const double ce = parfmCostEffectiveness(64, j);
        EXPECT_LE(ce, last) << "j=" << j;
        last = ce;
    }
}

TEST_F(AnalysisTest, RowFailMatchesClosedFormInUnderflowRegion)
{
    // For tiny q the recurrence collapses to (W - F/2) * q / R.
    const std::uint32_t flip = 50000, th = 16;
    const double log_fail = parfmRowFailLog10(timing_, flip, th);
    const double ln_q = (flip / 2.0) * std::log1p(-1.0 / th);
    const std::uint64_t w = dram::rfmIntervalsPerWindow(timing_, th);
    const double expect =
        (std::log(static_cast<double>(w - flip / 2)) - std::log(16.0) +
         ln_q) /
        std::log(10.0);
    EXPECT_NEAR(log_fail, expect, 0.5);
}

TEST_F(AnalysisTest, FailureGrowsWithRfmTh)
{
    double last = -1e9;
    for (std::uint32_t th : {8u, 16u, 32u, 64u, 128u}) {
        const double f = parfmSystemFailLog10(timing_, 6250, th, 22);
        EXPECT_GE(f, last) << "RFM_TH=" << th;
        last = f;
    }
}

TEST_F(AnalysisTest, FailureDropsWithFlipTh)
{
    double last = 1.0;
    for (std::uint32_t flip : {1500u, 3125u, 6250u, 12500u}) {
        const double f = parfmSystemFailLog10(timing_, flip, 32, 22);
        EXPECT_LE(f, last) << "FlipTH=" << flip;
        last = f;
    }
}

TEST_F(AnalysisTest, MaxRfmThMeetsTargetAndIsMaximal)
{
    for (std::uint32_t flip : {3125u, 6250u, 25000u}) {
        const std::uint32_t th = parfmMaxRfmTh(timing_, flip);
        ASSERT_GT(th, 0u) << "FlipTH=" << flip;
        EXPECT_LE(parfmSystemFailLog10(timing_, flip, th, 22), -15.0);
        EXPECT_GT(parfmSystemFailLog10(timing_, flip, 2 * th, 22),
                  -15.0)
            << "FlipTH=" << flip << " th=" << th;
    }
}

TEST_F(AnalysisTest, ParfmNeedsLowerRfmThAtLowFlipTh)
{
    // Section III-E: as FlipTH decreases PARFM must sample more often
    // — this is exactly what makes it expensive.
    const std::uint32_t th_high = parfmMaxRfmTh(timing_, 50000);
    const std::uint32_t th_low = parfmMaxRfmTh(timing_, 1500);
    EXPECT_GT(th_high, th_low);
    EXPECT_LE(th_low, 16u);
}

TEST_F(AnalysisTest, MoreBanksWeakenTheGuarantee)
{
    const double f22 = parfmSystemFailLog10(timing_, 6250, 32, 22);
    const double f1024 = parfmSystemFailLog10(timing_, 6250, 32, 1024);
    EXPECT_GT(f1024, f22);
}

// --------------------------------------------------------- Area model

TEST_F(AnalysisTest, TableIvFlipThsDescending)
{
    const auto &flips = tableIvFlipThs();
    ASSERT_EQ(flips.size(), 6u);
    for (std::size_t i = 1; i < flips.size(); ++i)
        EXPECT_LT(flips[i], flips[i - 1]);
}

TEST_F(AnalysisTest, GrapheneSizesNearTableIv)
{
    AreaModel model(timing_, geom_);
    // Table IV Graphene row (KB): 0.14 0.21 0.51 0.99 1.92 3.7 —
    // our sizing must land within 2x of each.
    const double paper[] = {0.14, 0.21, 0.51, 0.99, 1.92, 3.7};
    const auto &flips = tableIvFlipThs();
    for (std::size_t i = 0; i < flips.size(); ++i) {
        const double kb = model.grapheneBytes(flips[i]) / 1024.0;
        EXPECT_GT(kb, paper[i] / 2.0) << flips[i];
        EXPECT_LT(kb, paper[i] * 2.0) << flips[i];
    }
}

TEST_F(AnalysisTest, BlockHammerSizesMatchTableIv)
{
    AreaModel model(timing_, geom_);
    const double paper[] = {3.75, 3.5, 3.25, 6.0, 11.0, 20.0};
    const auto &flips = tableIvFlipThs();
    for (std::size_t i = 0; i < flips.size(); ++i) {
        const double kb = model.blockHammerBytes(flips[i]) / 1024.0;
        EXPECT_NEAR(kb, paper[i], paper[i] * 0.15) << flips[i];
    }
}

TEST_F(AnalysisTest, TwiceIsOrderOfMagnitudeLargerThanGraphene)
{
    AreaModel model(timing_, geom_);
    for (std::uint32_t flip : tableIvFlipThs()) {
        EXPECT_GT(model.twiceBytes(flip),
                  5.0 * model.grapheneBytes(flip))
            << flip;
    }
}

TEST_F(AnalysisTest, CbtSizesNearTableIv)
{
    AreaModel model(timing_, geom_);
    const double paper[] = {0.47, 0.97, 2.0, 4.12, 8.5, 17.5};
    const auto &flips = tableIvFlipThs();
    for (std::size_t i = 0; i < flips.size(); ++i) {
        const double kb = model.cbtBytes(flips[i]) / 1024.0;
        EXPECT_NEAR(kb, paper[i], paper[i] * 0.35) << flips[i];
    }
}

TEST_F(AnalysisTest, MithrilSmallerThanBlockHammerEverywhere)
{
    // Figure 10(e): 4x-60x smaller at every FlipTH.
    AreaModel model(timing_, geom_);
    const std::uint32_t rfm_ths[] = {256, 256, 256, 128, 64, 32};
    const auto &flips = tableIvFlipThs();
    for (std::size_t i = 0; i < flips.size(); ++i) {
        const auto mithril = model.mithrilBytes(flips[i], rfm_ths[i]);
        ASSERT_TRUE(mithril.has_value()) << flips[i];
        const double bh = model.blockHammerBytes(flips[i]);
        EXPECT_LT(*mithril * 3.0, bh) << flips[i];
    }
}

TEST_F(AnalysisTest, MithrilInfeasibleCellsMatchTableIv)
{
    // Table IV's '-' cells: RFM_TH 256 is mathematically infeasible
    // at 3.125K/1.5K, as is 128 at 1.5K; 64 at 1.5K is feasible but
    // with an "overly high Nentry" (Section VI-A), which is why the
    // paper pins RFM_TH to 32 there.
    AreaModel model(timing_, geom_);
    EXPECT_FALSE(model.mithrilBytes(3125, 256).has_value());
    EXPECT_FALSE(model.mithrilBytes(1500, 256).has_value());
    EXPECT_FALSE(model.mithrilBytes(1500, 128).has_value());
    const auto huge = model.mithrilBytes(1500, 64);
    ASSERT_TRUE(huge.has_value());
    const auto chosen = model.mithrilBytes(1500, 32);
    ASSERT_TRUE(chosen.has_value());
    EXPECT_GT(*huge, 2.0 * *chosen);
}

TEST_F(AnalysisTest, MithrilTableIvBallpark)
{
    // Table IV Mithril-128 row (KB): 0.07 0.15 0.34 0.84 3.76.
    AreaModel model(timing_, geom_);
    const double paper[] = {0.07, 0.15, 0.34, 0.84, 3.76};
    const std::uint32_t flips[] = {50000, 25000, 12500, 6250, 3125};
    for (std::size_t i = 0; i < 5; ++i) {
        const auto kb = model.mithrilBytes(flips[i], 128);
        ASSERT_TRUE(kb.has_value());
        EXPECT_GT(*kb / 1024.0, paper[i] * 0.5) << flips[i];
        EXPECT_LT(*kb / 1024.0, paper[i] * 2.2) << flips[i];
    }
}

// --------------------------------------------------------- ARR vs RFM

TEST_F(AnalysisTest, ArrGrapheneIsLinearInThreshold)
{
    const auto s1 = arrGrapheneSafeFlipTh(1000);
    const auto s2 = arrGrapheneSafeFlipTh(2000);
    const auto s4 = arrGrapheneSafeFlipTh(4000);
    EXPECT_NEAR(static_cast<double>(s2) / s1, 2.0, 0.01);
    EXPECT_NEAR(static_cast<double>(s4) / s2, 2.0, 0.01);
}

TEST_F(AnalysisTest, PaperWorkedExample)
{
    // Section III-A: threshold 2K, RFM_TH 64 -> ~310 rows can reach
    // the threshold; the safe FlipTH lands near 20K (order ~2x), far
    // above the ARR-era value.
    const std::uint64_t rows = concurrentThresholdRows(timing_, 2000);
    EXPECT_NEAR(static_cast<double>(rows), 304.0, 10.0);
    const std::uint64_t safe =
        rfmGrapheneSafeFlipTh(timing_, 2000, 64);
    EXPECT_GT(safe, 20000u);
    EXPECT_LT(safe, 35000u);
    EXPECT_GT(safe, arrGrapheneSafeFlipTh(2000) * 2);
}

TEST_F(AnalysisTest, RfmGrapheneHasAFloorRegardlessOfThreshold)
{
    // Figure 2's core message: shrinking the threshold cannot push the
    // RFM-Graphene safe FlipTH below a floor set by the queue drain.
    std::uint64_t best = ~0ull;
    for (std::uint32_t t = 128; t <= 8192; t *= 2)
        best = std::min(best,
                        rfmGrapheneSafeFlipTh(timing_, t, 64));
    EXPECT_GT(best, 10000u);  // ARR-Graphene reaches ~512 at t=128.
    EXPECT_LT(arrGrapheneSafeFlipTh(128), 1000u);
}

TEST_F(AnalysisTest, LargerRfmThWorsensTheFloor)
{
    for (std::uint32_t t : {512u, 2048u}) {
        EXPECT_GT(rfmGrapheneSafeFlipTh(timing_, t, 256),
                  rfmGrapheneSafeFlipTh(timing_, t, 64))
            << t;
    }
}

} // namespace
} // namespace mithril::analysis
