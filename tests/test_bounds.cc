/**
 * @file
 * Tests of the Theorem 1 / Theorem 2 bound math and the configuration
 * solver (Section IV-C/D, Figure 6).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hh"
#include "core/config_solver.hh"
#include "dram/timing.hh"

namespace mithril::core
{
namespace
{

class BoundsTest : public ::testing::Test
{
  protected:
    dram::Timing timing_ = dram::ddr5_4800();
    dram::Geometry geom_ = dram::paperGeometry();
};

TEST_F(BoundsTest, HarmonicValues)
{
    EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
    EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
    EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
    EXPECT_NEAR(harmonic(100), 5.187377, 1e-5);
    // Asymptotic branch consistency at the switch point.
    double exact = 0.0;
    for (int k = 1; k <= 64; ++k)
        exact += 1.0 / k;
    EXPECT_NEAR(harmonic(64), exact, 1e-9);
}

TEST_F(BoundsTest, WindowIntervalsMatchesHandComputation)
{
    // W = ceil((tREFW - (tREFW/tREFI)*tRFC) / (tRC*RFM_TH + tRFM)).
    const double usable = 32e6 - 8192.0 * 295.0;  // ns
    for (std::uint32_t th : {16u, 64u, 256u}) {
        const double expect =
            std::ceil(usable / (48.64 * th + 97.28));
        EXPECT_EQ(windowIntervals(timing_, th),
                  static_cast<std::uint64_t>(expect))
            << "RFM_TH=" << th;
    }
}

TEST_F(BoundsTest, WindowShrinksWithLargerRfmTh)
{
    std::uint64_t last = ~0ull;
    for (std::uint32_t th : {16u, 32u, 64u, 128u, 256u, 512u}) {
        const std::uint64_t w = windowIntervals(timing_, th);
        EXPECT_LT(w, last);
        last = w;
    }
}

TEST_F(BoundsTest, Theorem1MatchesClosedForm)
{
    const std::uint32_t n = 100, th = 64;
    const double w = static_cast<double>(windowIntervals(timing_, th));
    const double expect = 64.0 * harmonic(n) + 64.0 / n * (w - 2.0);
    EXPECT_DOUBLE_EQ(theorem1Bound(timing_, n, th), expect);
}

TEST_F(BoundsTest, Theorem1DecreasesWithEntriesInOperatingRegion)
{
    // In the W-dominated region, more entries means a lower bound.
    double last = 1e18;
    for (std::uint32_t n : {8u, 16u, 32u, 64u, 128u, 256u}) {
        const double m = theorem1Bound(timing_, n, 64);
        EXPECT_LT(m, last) << "n=" << n;
        last = m;
    }
}

TEST_F(BoundsTest, Theorem1EventuallyGrowsWithEntries)
{
    // The harmonic term eventually dominates: M(N) is not monotone.
    const double m_small = theorem1Bound(timing_, 20000, 64);
    const double m_large = theorem1Bound(timing_, 2000000, 64);
    EXPECT_GT(m_large, m_small);
}

TEST_F(BoundsTest, Theorem2ReducesToTheorem1AtZeroAdth)
{
    for (std::uint32_t n : {16u, 256u, 1024u}) {
        EXPECT_DOUBLE_EQ(theorem2Bound(timing_, n, 64, 0),
                         theorem1Bound(timing_, n, 64));
    }
}

TEST_F(BoundsTest, Theorem2NeverBelowTheorem1)
{
    // Skipping refreshes can only weaken the bound.
    for (std::uint32_t ad : {50u, 100u, 200u, 400u}) {
        for (std::uint32_t n : {64u, 256u, 1024u}) {
            EXPECT_GE(theorem2Bound(timing_, n, 64, ad),
                      theorem1Bound(timing_, n, 64) - 1e-9)
                << "ad=" << ad << " n=" << n;
        }
    }
}

TEST_F(BoundsTest, Theorem2GrowsWithAdth)
{
    double last = 0.0;
    for (std::uint32_t ad : {0u, 50u, 100u, 200u, 400u}) {
        const double m = theorem2Bound(timing_, 512, 64, ad);
        EXPECT_GE(m, last);
        last = m;
    }
}

TEST_F(BoundsTest, AdaptiveNStarFormula)
{
    // n* = ceil(N * R / (R + AdTH)).
    EXPECT_EQ(adaptiveNStar(100, 64, 0), 100u);
    EXPECT_EQ(adaptiveNStar(100, 64, 64), 50u);
    EXPECT_EQ(adaptiveNStar(100, 64, 200), 25u);  // 6400/264 = 24.2
    EXPECT_EQ(adaptiveNStar(1, 64, 200), 1u);
}

TEST_F(BoundsTest, SafeConfigThresholds)
{
    // A config is safe iff M < FlipTH / effect.
    const double m = theorem1Bound(timing_, 512, 64);
    const auto just_above = static_cast<std::uint32_t>(2.0 * m) + 2;
    const auto just_below = static_cast<std::uint32_t>(2.0 * m) - 2;
    EXPECT_TRUE(isSafeConfig(timing_, 512, 64, just_above));
    EXPECT_FALSE(isSafeConfig(timing_, 512, 64, just_below));
}

TEST_F(BoundsTest, NonAdjacentEffectTightensRequirement)
{
    // Aggregated effect 3.5 (Section V-C) requires a higher FlipTH for
    // the same table.
    const double m = theorem1Bound(timing_, 512, 64);
    const auto flip = static_cast<std::uint32_t>(2.5 * m);
    EXPECT_TRUE(isSafeConfig(timing_, 512, 64, flip, 0, 2.0));
    EXPECT_FALSE(isSafeConfig(timing_, 512, 64, flip, 0, 3.5));
}

TEST_F(BoundsTest, WrappingCounterBitsCoverSpread)
{
    const std::uint32_t bits = wrappingCounterBits(timing_, 512, 64);
    const double m = theorem1Bound(timing_, 512, 64);
    EXPECT_GT(1ull << (bits - 1), static_cast<std::uint64_t>(m));
    EXPECT_LT(bits, 32u);  // Far smaller than a full counter.
}

TEST_F(BoundsTest, LossyCountingNeedsMoreEntries)
{
    // Figure 6's dotted lines: Lossy Counting is strictly larger.
    ConfigSolver solver(timing_, geom_);
    for (std::uint32_t flip : {25000u, 50000u}) {
        const std::uint64_t cbs = solver.minEntries(flip, 256);
        const std::uint64_t lossy =
            lossyCountingEntries(timing_, 256, flip);
        ASSERT_GT(cbs, 0u);
        EXPECT_GT(lossy, cbs * 3) << "FlipTH=" << flip;
    }
}

class SolverTest : public BoundsTest
{
  protected:
    ConfigSolver solver_{timing_, geom_};
};

TEST_F(SolverTest, MinEntriesIsMinimal)
{
    for (std::uint32_t flip : {6250u, 12500u, 50000u}) {
        const std::uint64_t n = solver_.minEntries(flip, 128);
        ASSERT_GT(n, 0u);
        EXPECT_TRUE(isSafeConfig(timing_,
                                 static_cast<std::uint32_t>(n), 128,
                                 flip));
        if (n > 1) {
            EXPECT_FALSE(isSafeConfig(
                timing_, static_cast<std::uint32_t>(n - 1), 128, flip));
        }
    }
}

TEST_F(SolverTest, InfeasibleWhenHarmonicDominates)
{
    // RFM_TH 512 cannot protect FlipTH 1500: the very first summand
    // already exceeds FlipTH/2 for any N.
    EXPECT_EQ(solver_.minEntries(1500, 512), 0u);
    EXPECT_FALSE(solver_.solve(1500, 512).has_value());
}

TEST_F(SolverTest, PaperConfigurationsAreFeasible)
{
    // Section VI-A / Table IV: these (FlipTH, RFM_TH) pairs exist.
    const std::pair<std::uint32_t, std::uint32_t> pairs[] = {
        {50000, 256}, {25000, 256}, {12500, 256}, {12500, 128},
        {6250, 128},  {6250, 64},   {3125, 64},   {3125, 32},
        {1500, 32},
    };
    for (const auto &[flip, th] : pairs) {
        EXPECT_TRUE(solver_.solve(flip, th).has_value())
            << flip << "/" << th;
    }
}

TEST_F(SolverTest, TableSizeTradeoffAcrossRfmTh)
{
    // Figure 6: for one FlipTH, smaller RFM_TH (more frequent RFMs)
    // needs fewer entries.
    const auto configs =
        solver_.sweepRfmTh(6250, {32, 64, 128, 256});
    ASSERT_EQ(configs.size(), 4u);
    for (std::size_t i = 1; i < configs.size(); ++i) {
        EXPECT_GT(configs[i].nEntry, configs[i - 1].nEntry)
            << "RFM_TH " << configs[i].rfmTh;
    }
}

TEST_F(SolverTest, LowerFlipThNeedsBiggerTables)
{
    std::uint64_t last = 0;
    for (std::uint32_t flip : {50000u, 25000u, 12500u, 6250u, 3125u}) {
        const std::uint64_t n = solver_.minEntries(flip, 64);
        ASSERT_GT(n, 0u);
        EXPECT_GT(n, last) << "FlipTH=" << flip;
        last = n;
    }
}

TEST_F(SolverTest, AdaptiveRefreshCostsExtraEntries)
{
    // Figure 7's "additional Nentry": AdTH > 0 inflates the table, but
    // only modestly at the paper's default 200.
    const std::uint64_t base = solver_.minEntries(3125, 16, 0);
    const std::uint64_t adaptive = solver_.minEntries(3125, 16, 200);
    ASSERT_GT(base, 0u);
    ASSERT_GT(adaptive, 0u);
    EXPECT_GE(adaptive, base);
    EXPECT_LE(static_cast<double>(adaptive),
              static_cast<double>(base) * 1.30);
}

TEST_F(SolverTest, SolvedConfigHasConsistentMetadata)
{
    const auto cfg = solver_.solve(6250, 128, 200);
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->flipTh, 6250u);
    EXPECT_EQ(cfg->rfmTh, 128u);
    EXPECT_EQ(cfg->adTh, 200u);
    EXPECT_EQ(cfg->rowBits, 16u);  // 64K rows.
    EXPECT_LT(cfg->bound, 3125.0);
    EXPECT_GT(cfg->tableBytes(), 0.0);
    // Table IV ballpark: Mithril-128 at 6.25K is ~0.8-1.3 KB.
    EXPECT_LT(cfg->tableBytes(), 2048.0);
}

TEST(CeilLog2, Values)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(65536), 16u);
    EXPECT_EQ(ceilLog2(65537), 17u);
}

/** Parameterized feasibility sweep mirroring the Figure 6 grid. */
class Fig6Sweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>>
{
};

TEST_P(Fig6Sweep, SolverAgreesWithDirectBoundCheck)
{
    const auto [flip, th] = GetParam();
    dram::Timing timing = dram::ddr5_4800();
    ConfigSolver solver(timing, dram::paperGeometry());
    const std::uint64_t n = solver.minEntries(flip, th);
    if (n == 0) {
        // Infeasible: even a huge table must fail.
        EXPECT_FALSE(isSafeConfig(timing, 1u << 22, th, flip));
    } else {
        EXPECT_TRUE(isSafeConfig(
            timing, static_cast<std::uint32_t>(n), th, flip));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Fig6Sweep,
    ::testing::Combine(::testing::Values(1500u, 3125u, 6250u, 12500u,
                                         25000u, 50000u),
                       ::testing::Values(16u, 32u, 64u, 128u, 256u,
                                         512u)));

} // namespace
} // namespace mithril::core
