/**
 * @file
 * Tests for the Counter-based Summary table: the exact semantics the
 * Mithril proof relies on, structural invariants of the stream-summary
 * implementation, and property tests of the CbS bounds
 *   (1) actual <= estimated
 *   (2) estimated <= actual + min
 * under random and adversarial streams.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.hh"
#include "core/cbs_table.hh"

namespace mithril::core
{
namespace
{

TEST(CbsTable, StartsEmptyWithZeroCounts)
{
    CbsTable t(4);
    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.minValue(), 0u);
    EXPECT_EQ(t.maxValue(), 0u);
    EXPECT_EQ(t.spread(), 0u);
    EXPECT_TRUE(t.checkInvariants());
}

TEST(CbsTable, HitIncrementsCounter)
{
    CbsTable t(4);
    EXPECT_EQ(t.touch(10), 1u);
    EXPECT_EQ(t.touch(10), 2u);
    EXPECT_EQ(t.touch(10), 3u);
    EXPECT_EQ(t.estimate(10), 3u);
    EXPECT_TRUE(t.contains(10));
    EXPECT_TRUE(t.checkInvariants());
}

TEST(CbsTable, MissEvictsMinimumAndInherits)
{
    CbsTable t(2);
    t.touch(1);
    t.touch(1);  // 1 -> 2
    t.touch(2);  // 2 -> 1
    // Table full. New row 3 evicts row 2 (count 1) and inherits: 2.
    EXPECT_EQ(t.touch(3), 2u);
    EXPECT_FALSE(t.contains(2));
    EXPECT_TRUE(t.contains(3));
    EXPECT_TRUE(t.checkInvariants());
}

TEST(CbsTable, PaperFigure5Sequence)
{
    // Figure 5: table {A0:9, B0:9, C0:3, D0:1}; ACT A0 -> 10;
    // ACT E0 evicts D0 (min 1) -> E0:2; RFM resets A0 (max) to min 2.
    CbsTable t(4);
    for (int i = 0; i < 9; ++i)
        t.touch(0xA0);
    for (int i = 0; i < 9; ++i)
        t.touch(0xB0);
    for (int i = 0; i < 3; ++i)
        t.touch(0xC0);
    t.touch(0xD0);

    EXPECT_EQ(t.touch(0xA0), 10u);
    EXPECT_EQ(t.maxRow(), 0xA0u);

    EXPECT_EQ(t.touch(0xE0), 2u);
    EXPECT_FALSE(t.contains(0xD0));

    const RowId selected = t.resetMaxToMin();
    EXPECT_EQ(selected, 0xA0u);
    EXPECT_EQ(t.estimate(0xA0), 2u);
    EXPECT_EQ(t.maxValue(), 9u);   // B0 is the new max.
    EXPECT_EQ(t.maxRow(), 0xB0u);
    EXPECT_TRUE(t.checkInvariants());
}

TEST(CbsTable, EstimateOffTableIsMin)
{
    CbsTable t(2);
    t.touch(1);
    t.touch(1);
    t.touch(2);
    EXPECT_EQ(t.minValue(), 1u);
    EXPECT_EQ(t.estimate(999), 1u);
}

TEST(CbsTable, ResetMaxToMinOnEmptyTable)
{
    CbsTable t(4);
    EXPECT_EQ(t.resetMaxToMin(), kInvalidRow);
}

TEST(CbsTable, ResetWhenAllEqualIsNoOp)
{
    CbsTable t(2);
    t.touch(1);
    t.touch(2);
    const RowId r = t.resetMaxToMin();
    EXPECT_NE(r, kInvalidRow);
    EXPECT_EQ(t.estimate(1), 1u);
    EXPECT_EQ(t.estimate(2), 1u);
    EXPECT_TRUE(t.checkInvariants());
}

TEST(CbsTable, ResetRowToMin)
{
    CbsTable t(4);
    for (int i = 0; i < 5; ++i)
        t.touch(7);
    t.touch(8);
    EXPECT_TRUE(t.resetRowToMin(7));
    EXPECT_EQ(t.estimate(7), t.minValue());
    EXPECT_FALSE(t.resetRowToMin(12345));
    EXPECT_TRUE(t.checkInvariants());
}

TEST(CbsTable, ClearRestoresInitialState)
{
    CbsTable t(4, 12);
    for (RowId r = 0; r < 10; ++r)
        t.touch(r);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.minValue(), 0u);
    EXPECT_EQ(t.counterBits(), 12u);
    EXPECT_TRUE(t.checkInvariants());
}

TEST(CbsTable, SpreadTracksMaxMinusMin)
{
    CbsTable t(3);
    for (int i = 0; i < 10; ++i)
        t.touch(1);
    t.touch(2);
    t.touch(3);
    EXPECT_EQ(t.spread(), 9u);
}

TEST(CbsTable, EntriesSnapshot)
{
    CbsTable t(4);
    t.touch(5);
    t.touch(5);
    t.touch(6);
    auto entries = t.entries();
    ASSERT_EQ(entries.size(), 2u);
    std::map<RowId, std::uint64_t> m;
    for (const auto &e : entries)
        m[e.row] = e.count;
    EXPECT_EQ(m[5], 2u);
    EXPECT_EQ(m[6], 1u);
}

TEST(CbsTable, WrappedLessBehavesModularly)
{
    // 8-bit counters: 250 < 260 (=4 wrapped) must still hold.
    EXPECT_TRUE(CbsTable::wrappedLess(250, 260, 8));
    EXPECT_FALSE(CbsTable::wrappedLess(260, 250, 8));
    EXPECT_FALSE(CbsTable::wrappedLess(5, 5, 8));
    EXPECT_TRUE(CbsTable::wrappedLess(0, 1, 8));
    // Full-width behaves like ordinary comparison.
    EXPECT_TRUE(CbsTable::wrappedLess(1, 2, 64));
}

TEST(CbsTable, WrappedViewMatchesOrderWhileSpreadBounded)
{
    // Drive counters past the 6-bit wrap point; relative order via
    // wrappedLess must match the absolute order as long as the spread
    // stays below 2^(bits-1) = 32.
    CbsTable t(4, 6);
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        t.touch(static_cast<RowId>(rng.nextBounded(6)));
        if (i % 7 == 0)
            t.resetMaxToMin();  // Keep the spread tight.
        ASSERT_LT(t.spread(), 32u);
        auto entries = t.entries();
        for (std::size_t a = 0; a < entries.size(); ++a) {
            for (std::size_t b = 0; b < entries.size(); ++b) {
                const bool abs_less =
                    entries[a].count < entries[b].count;
                const bool wrap_less = CbsTable::wrappedLess(
                    entries[a].count & 63, entries[b].count & 63, 6);
                ASSERT_EQ(abs_less, wrap_less);
            }
        }
    }
}

/** Reference model: exact per-row actual counts. */
class CbsBoundsProperty : public ::testing::TestWithParam<
                              std::tuple<std::uint32_t, std::uint32_t>>
{
};

TEST_P(CbsBoundsProperty, LowerAndUpperBoundsHold)
{
    const auto [capacity, rows] = GetParam();
    CbsTable t(capacity);
    std::map<RowId, std::uint64_t> actual;
    Rng rng(capacity * 1000 + rows);

    for (int i = 0; i < 20000; ++i) {
        const RowId row = static_cast<RowId>(rng.nextZipf(rows, 0.8));
        t.touch(row);
        ++actual[row];
        ASSERT_TRUE(true);

        if (i % 512 == 0) {
            ASSERT_TRUE(t.checkInvariants());
            const std::uint64_t min = t.minValue();
            for (const auto &[r, count] : actual) {
                const std::uint64_t est = t.estimate(r);
                // (1) actual <= estimated.
                ASSERT_LE(count, est)
                    << "row " << r << " at step " << i;
                // (2) estimated <= actual + min.
                ASSERT_LE(est, count + min)
                    << "row " << r << " at step " << i;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CbsBoundsProperty,
    ::testing::Values(std::make_tuple(1u, 8u), std::make_tuple(4u, 16u),
                      std::make_tuple(16u, 64u),
                      std::make_tuple(64u, 64u),
                      std::make_tuple(128u, 1024u)));

TEST(CbsTableProperty, GreedyResetPreservesBoundsWithDecrement)
{
    // After a reset-to-min the refreshed row's *actual* count becomes 0
    // (its victims were refreshed); the invariants must keep holding
    // with that adjustment — this is precisely why the upper bound (2)
    // matters (Section III-C).
    CbsTable t(8);
    std::map<RowId, std::uint64_t> actual;
    Rng rng(99);
    for (int i = 0; i < 30000; ++i) {
        const RowId row = static_cast<RowId>(rng.nextZipf(32, 1.1));
        t.touch(row);
        ++actual[row];
        if (i % 64 == 63) {
            const RowId selected = t.resetMaxToMin();
            if (selected != kInvalidRow)
                actual[selected] = 0;  // Preventively refreshed.
        }
        if (i % 256 == 0) {
            const std::uint64_t min = t.minValue();
            for (const auto &[r, count] : actual) {
                ASSERT_LE(count, t.estimate(r)) << "step " << i;
                ASSERT_LE(t.estimate(r), count + min) << "step " << i;
            }
            ASSERT_TRUE(t.checkInvariants());
        }
    }
}

TEST(CbsTableProperty, MonotoneNonDecreasingMin)
{
    // The table minimum never decreases under touch() alone.
    CbsTable t(8);
    Rng rng(5);
    std::uint64_t last_min = 0;
    for (int i = 0; i < 20000; ++i) {
        t.touch(static_cast<RowId>(rng.nextBounded(100)));
        ASSERT_GE(t.minValue(), last_min);
        last_min = t.minValue();
    }
}

TEST(CbsTableProperty, TotalCountConservation)
{
    // Without resets, the sum of all counters equals the number of
    // touches (each touch adds exactly one).
    CbsTable t(16);
    Rng rng(6);
    const int kTouches = 5000;
    for (int i = 0; i < kTouches; ++i)
        t.touch(static_cast<RowId>(rng.nextBounded(64)));
    std::uint64_t sum = 0;
    for (const auto &e : t.entries())
        sum += e.count;
    EXPECT_EQ(sum, static_cast<std::uint64_t>(kTouches));
}

TEST(CbsTableProperty, SingleEntryTableTracksEverything)
{
    CbsTable t(1);
    for (int i = 0; i < 100; ++i)
        t.touch(static_cast<RowId>(i % 3));
    // One entry absorbs the whole stream.
    EXPECT_EQ(t.maxValue(), 100u);
    EXPECT_EQ(t.minValue(), 100u);
}

TEST(CbsTablePerf, TouchIsConstantTimeish)
{
    // Smoke check that a large table handles a long stream quickly —
    // the stream-summary structure must not degrade to O(N) scans.
    CbsTable t(4096);
    Rng rng(8);
    for (int i = 0; i < 2000000; ++i)
        t.touch(static_cast<RowId>(rng.nextBounded(65536)));
    EXPECT_EQ(t.touches(), 2000000u);
    EXPECT_TRUE(t.checkInvariants());
}

} // namespace
} // namespace mithril::core
