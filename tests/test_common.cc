/**
 * @file
 * Unit tests for the common utilities: RNG, stats, histogram, table
 * printer, parameter set, logging, and time conversion.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/config.hh"
#include "common/histogram.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table_printer.hh"
#include "common/types.hh"

namespace mithril
{
namespace
{

TEST(Types, TickConversionRoundTrip)
{
    EXPECT_EQ(nsToTick(1.0), 1000);
    EXPECT_EQ(usToTick(1.0), 1000000);
    EXPECT_EQ(msToTick(1.0), 1000000000);
    EXPECT_DOUBLE_EQ(tickToNs(nsToTick(48.64)), 48.64);
    EXPECT_DOUBLE_EQ(tickToMs(msToTick(32.0)), 32.0);
}

TEST(Types, FractionalNanoseconds)
{
    // DDR5-4800 tCK = 416.67ps must not collapse to zero.
    EXPECT_GT(nsToTick(1.0 / 2.4), 0);
    EXPECT_NEAR(tickToNs(nsToTick(0.417)), 0.417, 0.001);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 2000; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedZeroReturnsZero)
{
    Rng rng(7);
    EXPECT_EQ(rng.nextBounded(0), 0u);
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    Rng rng(11);
    constexpr std::uint64_t kBuckets = 8;
    constexpr int kSamples = 80000;
    std::array<int, kBuckets> counts{};
    for (int i = 0; i < kSamples; ++i)
        ++counts[rng.nextBounded(kBuckets)];
    for (int c : counts) {
        EXPECT_NEAR(c, kSamples / kBuckets,
                    0.1 * kSamples / kBuckets);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(13);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoolRespectsProbability)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
    EXPECT_FALSE(rng.nextBool(0.0));
    EXPECT_TRUE(rng.nextBool(1.0));
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(23);
    for (double mean : {2.0, 8.0, 28.0}) {
        double sum = 0.0;
        constexpr int kSamples = 60000;
        for (int i = 0; i < kSamples; ++i)
            sum += static_cast<double>(rng.nextGeometric(mean));
        EXPECT_NEAR(sum / kSamples, mean, mean * 0.05);
    }
}

TEST(Rng, GeometricMinimumIsOne)
{
    Rng rng(29);
    EXPECT_EQ(rng.nextGeometric(0.5), 1u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.nextGeometric(3.0), 1u);
}

TEST(Rng, ZipfSkewsTowardSmallValues)
{
    Rng rng(31);
    constexpr std::uint64_t kN = 1000;
    std::uint64_t low = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i) {
        const auto v = rng.nextZipf(kN, 0.9);
        EXPECT_LT(v, kN);
        low += (v < kN / 10);
    }
    // With s=0.9, far more than 10% of the mass is in the lowest decile.
    EXPECT_GT(low, total / 3);
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageTracksMinMaxMean)
{
    Average a;
    a.sample(2.0);
    a.sample(6.0);
    a.sample(4.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.minValue(), 2.0);
    EXPECT_DOUBLE_EQ(a.maxValue(), 6.0);
}

TEST(Stats, RegistryLookupAndDump)
{
    StatRegistry reg;
    reg.counter("mc.acts").inc(7);
    reg.counter("mc.reads").inc(3);
    reg.average("lat").sample(10.0);
    EXPECT_EQ(reg.counterValue("mc.acts"), 7u);
    EXPECT_EQ(reg.counterValue("missing"), 0u);
    EXPECT_EQ(reg.counters().size(), 2u);
    const std::string dump = reg.dump();
    EXPECT_NE(dump.find("mc.acts 7"), std::string::npos);
    reg.resetAll();
    EXPECT_EQ(reg.counterValue("mc.acts"), 0u);
}

TEST(Histogram, BucketsAndPercentiles)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_EQ(h.totalSamples(), 100u);
    EXPECT_EQ(h.bucketValue(0), 10u);
    EXPECT_NEAR(h.mean(), 50.0, 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 10.0);
    EXPECT_NEAR(h.percentile(0.99), 100.0, 10.0);
}

TEST(Histogram, OverflowUnderflow)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(-1.0);
    h.sample(100.0, 3);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 3u);
    EXPECT_EQ(h.totalSamples(), 4u);
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"name", "value"});
    t.beginRow().cell("alpha").num(1.5, 2);
    t.beginRow().cell("b").intCell(42);
    const std::string s = t.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TablePrinter, FormatHelpers)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatKiB(2048.0, 1), "2.0 KB");
}

TEST(ParamSet, ParsesKeyValuesAndPositional)
{
    const char *argv[] = {"prog", "a=1", "b=2.5", "pos", "c=yes"};
    auto p = ParamSet::fromArgs(5, argv);
    EXPECT_EQ(p.getInt("a"), 1);
    EXPECT_DOUBLE_EQ(p.getDouble("b"), 2.5);
    EXPECT_TRUE(p.getBool("c"));
    EXPECT_EQ(p.positional().size(), 1u);
    EXPECT_EQ(p.positional()[0], "pos");
    EXPECT_EQ(p.getInt("missing", 9), 9);
    EXPECT_TRUE(p.has("a"));
    EXPECT_FALSE(p.has("z"));
}

TEST(ParamSet, Uint32RangeCheck)
{
    ParamSet p;
    p.set("ok", "4294967295");
    EXPECT_EQ(p.getUint32("ok"), 0xffffffffu);
    EXPECT_EQ(p.getUint32("missing", 7), 7u);
    setLogThrowOnFatal(true);
    p.set("big", "4294967296");
    EXPECT_THROW(p.getUint32("big"), std::runtime_error);
    setLogThrowOnFatal(false);
}

TEST(ParamSet, ListAccessors)
{
    ParamSet p;
    p.set("names", "alpha, beta ,gamma");
    p.set("nums", "1,0x10, 42");
    p.set("empty", "");
    const auto names = p.getStringList("names");
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "beta");
    EXPECT_EQ(names[2], "gamma");
    const auto nums = p.getUintList("nums");
    ASSERT_EQ(nums.size(), 3u);
    EXPECT_EQ(nums[0], 1u);
    EXPECT_EQ(nums[1], 16u);
    EXPECT_EQ(nums[2], 42u);
    EXPECT_TRUE(p.getStringList("empty").empty());
    EXPECT_TRUE(p.getUintList("missing").empty());
}

TEST(ParamSet, MalformedListEntryIsFatal)
{
    setLogThrowOnFatal(true);
    ParamSet p;
    p.set("nums", "1,two,3");
    EXPECT_THROW(p.getUintList("nums"), std::runtime_error);
    // strtoull would silently wrap a negative; it must be fatal.
    p.set("nums", "-1");
    EXPECT_THROW(p.getUintList("nums"), std::runtime_error);
    setLogThrowOnFatal(false);
}

TEST(ParamSet, DuplicateKeyIsFatal)
{
    setLogThrowOnFatal(true);
    const char *argv[] = {"prog", "a=1", "b=2", "a=3"};
    EXPECT_THROW(ParamSet::fromArgs(4, argv), std::runtime_error);
    EXPECT_THROW(ParamSet::fromString("x=1 x=2"),
                 std::runtime_error);
    setLogThrowOnFatal(false);
}

TEST(ParamSet, FromStringSplitsOnWhitespace)
{
    const auto p = ParamSet::fromString("a=1  b=two\npos c=0.5");
    EXPECT_EQ(p.getUint("a"), 1u);
    EXPECT_EQ(p.getString("b"), "two");
    EXPECT_DOUBLE_EQ(p.getDouble("c"), 0.5);
    ASSERT_EQ(p.positional().size(), 1u);
    EXPECT_EQ(p.positional()[0], "pos");
}

TEST(ParamSet, GetDoubleInEnforcesRange)
{
    ParamSet p;
    p.set("p", "0.25");
    EXPECT_DOUBLE_EQ(p.getDoubleIn("p", 0.5, 0.0, 1.0), 0.25);
    EXPECT_DOUBLE_EQ(p.getDoubleIn("missing", 0.5, 0.0, 1.0), 0.5);
    setLogThrowOnFatal(true);
    p.set("p", "1.5");
    EXPECT_THROW(p.getDoubleIn("p", 0.5, 0.0, 1.0),
                 std::runtime_error);
    p.set("p", "-0.1");
    EXPECT_THROW(p.getDoubleIn("p", 0.5, 0.0, 1.0),
                 std::runtime_error);
    setLogThrowOnFatal(false);
}

TEST(ParamSet, MalformedIntegerIsFatal)
{
    setLogThrowOnFatal(true);
    std::string capture;
    setLogCapture(&capture);
    ParamSet p;
    p.set("x", "notanint");
    EXPECT_THROW(p.getInt("x"), std::runtime_error);
    setLogCapture(nullptr);
    setLogThrowOnFatal(false);
    EXPECT_NE(capture.find("fatal"), std::string::npos);
}

TEST(Logging, CaptureAndLevels)
{
    std::string capture;
    setLogCapture(&capture);
    warn("watch out %d", 7);
    inform("hello");
    setLogCapture(nullptr);
    EXPECT_NE(capture.find("warn: watch out 7"), std::string::npos);
    EXPECT_NE(capture.find("info: hello"), std::string::npos);
}

TEST(Logging, PanicThrowsWhenConfigured)
{
    setLogThrowOnFatal(true);
    std::string capture;
    setLogCapture(&capture);
    EXPECT_THROW(panic("boom"), std::runtime_error);
    setLogCapture(nullptr);
    setLogThrowOnFatal(false);
}

} // namespace
} // namespace mithril
