/**
 * @file
 * Tests for the CPU substrate: LLC behaviour (hits, LRU, writebacks)
 * and the trace-driven core model (width-limited retirement, MLP
 * window stalls, IPC accounting).
 */

#include <gtest/gtest.h>

#include <deque>

#include "cpu/cache.hh"
#include "cpu/core.hh"
#include "workload/trace.hh"

namespace mithril::cpu
{
namespace
{

CacheParams
tinyCache()
{
    CacheParams p;
    p.sizeBytes = 4096;  // 4 sets x 16 ways x 64B.
    p.ways = 16;
    p.lineBytes = 64;
    return p;
}

TEST(Cache, MissThenHit)
{
    Cache cache(tinyCache());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1020, false).hit);  // Same line.
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, LruEvictsOldest)
{
    Cache cache(tinyCache());
    // Fill one set (16 ways): lines mapping to set 0 are 64B * 4 apart.
    for (int w = 0; w < 16; ++w)
        cache.access(static_cast<Addr>(w) * 64 * 4, false);
    // Touch line 0 to make line 1 the LRU.
    cache.access(0, false);
    // A 17th line evicts line 1 (way for 64*4).
    cache.access(16ull * 64 * 4, false);
    EXPECT_TRUE(cache.access(0, false).hit);
    EXPECT_FALSE(cache.access(1ull * 64 * 4, false).hit);
}

TEST(Cache, DirtyEvictionProducesExactWriteback)
{
    Cache cache(tinyCache());
    const Addr dirty = 5ull * 64 * 4;
    cache.access(dirty, true);
    // Fill the set with 16 more lines to evict the dirty one.
    Cache::AccessResult result;
    bool seen_wb = false;
    for (int w = 0; w < 17; ++w) {
        result = cache.access(static_cast<Addr>(100 + w) * 64 * 4,
                              false);
        if (result.writeback) {
            seen_wb = true;
            EXPECT_EQ(result.writebackAddr, dirty);
            break;
        }
    }
    EXPECT_TRUE(seen_wb);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache cache(tinyCache());
    cache.access(0x40, false);
    cache.access(0x40, true);  // Hit promotes to dirty.
    // Evict it with 16 more lines in the same set (set 1: stride of
    // 4 lines with a 1-line offset).
    bool seen_wb = false;
    for (int w = 0; w < 20 && !seen_wb; ++w)
        seen_wb = cache.access(
                      static_cast<Addr>(50 + w) * 64 * 4 + 64, false)
                      .writeback;
    EXPECT_TRUE(seen_wb);
}

TEST(Cache, FlushDropsEverything)
{
    Cache cache(tinyCache());
    cache.access(0x1000, true);
    cache.flush();
    EXPECT_FALSE(cache.access(0x1000, false).hit);
}

TEST(Cache, HitRateAccounting)
{
    Cache cache(tinyCache());
    cache.access(0, false);
    cache.access(0, false);
    cache.access(0, false);
    cache.access(64 * 4, false);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

/** Scripted trace for core tests. */
class ScriptedTrace : public workload::TraceGenerator
{
  public:
    explicit ScriptedTrace(std::deque<workload::TraceRecord> records)
        : records_(std::move(records))
    {
    }

    std::optional<workload::TraceRecord>
    next() override
    {
        if (records_.empty())
            return std::nullopt;
        auto r = records_.front();
        records_.pop_front();
        return r;
    }

    std::string name() const override { return "scripted"; }

  private:
    std::deque<workload::TraceRecord> records_;
};

workload::TraceRecord
rec(std::uint64_t gap, Addr addr, bool write = false)
{
    workload::TraceRecord r;
    r.gap = gap;
    r.addr = addr;
    r.write = write;
    return r;
}

TEST(Core, ComputeBoundRetiresAtWidth)
{
    // All hits: IPC approaches the width for large gaps.
    CoreParams params;
    params.instrBudget = 4000;
    params.llcHitLatency = 0;
    std::deque<workload::TraceRecord> records;
    for (int i = 0; i < 10; ++i)
        records.push_back(rec(400, 0x40));
    ScriptedTrace trace(records);
    Core core(0, params, &trace);
    core.setAccessFn([](std::uint32_t, const workload::TraceRecord &,
                        Tick) { return Core::AccessOutcome{}; });

    Tick t = 0;
    while (!core.done()) {
        const Tick next = core.tryProgress(t);
        if (next == kTickMax)
            break;
        t = next;
    }
    EXPECT_TRUE(core.done());
    EXPECT_NEAR(core.ipc(), 4.0, 0.2);
}

TEST(Core, WindowFullBlocksUntilCompletion)
{
    CoreParams params;
    params.maxOutstanding = 2;
    params.instrBudget = 1000;
    std::deque<workload::TraceRecord> records;
    for (int i = 0; i < 5; ++i)
        records.push_back(rec(1, 0x1000 + i * 64));
    ScriptedTrace trace(records);
    Core core(0, params, &trace);
    int issued = 0;
    core.setAccessFn([&](std::uint32_t, const workload::TraceRecord &,
                         Tick) {
        ++issued;
        Core::AccessOutcome o;
        o.missOutstanding = true;
        return o;
    });

    // Advance through compute gaps until the window blocks.
    Tick t = 0;
    Tick next = core.tryProgress(t);
    while (next != kTickMax) {
        t = next;
        next = core.tryProgress(t);
    }
    EXPECT_EQ(issued, 2);  // Blocked with the window full.
    EXPECT_EQ(core.outstanding(), 2u);

    core.onCompletion(t + 1000);
    next = core.tryProgress(t + 1000);
    while (next != kTickMax) {
        t = next;
        next = core.tryProgress(t);
    }
    EXPECT_EQ(issued, 3);  // One slot freed admits one more miss.
    (void)next;
}

TEST(Core, RejectedAccessRetriesLater)
{
    CoreParams params;
    params.instrBudget = 100;
    std::deque<workload::TraceRecord> records{rec(1, 0x40)};
    ScriptedTrace trace(records);
    Core core(0, params, &trace);
    int calls = 0;
    core.setAccessFn([&](std::uint32_t, const workload::TraceRecord &,
                         Tick) {
        ++calls;
        Core::AccessOutcome o;
        o.accepted = (calls > 1);
        return o;
    });

    // First wake covers the compute gap; the next issues and is
    // rejected, returning a retry tick; the retry succeeds.
    Tick t = core.tryProgress(0);
    ASSERT_NE(t, kTickMax);
    Tick retry_at = core.tryProgress(t);
    EXPECT_EQ(calls, 1);
    ASSERT_NE(retry_at, kTickMax);
    EXPECT_GT(retry_at, t);
    core.tryProgress(retry_at);
    EXPECT_EQ(calls, 2);
}

TEST(Core, BudgetEndsTheTrace)
{
    CoreParams params;
    params.instrBudget = 50;
    std::deque<workload::TraceRecord> records;
    for (int i = 0; i < 100; ++i)
        records.push_back(rec(10, 0x40));
    ScriptedTrace trace(records);
    Core core(0, params, &trace);
    core.setAccessFn([](std::uint32_t, const workload::TraceRecord &,
                        Tick) { return Core::AccessOutcome{}; });
    Tick t = 0;
    while (!core.done()) {
        const Tick next = core.tryProgress(t);
        if (next == kTickMax)
            break;
        t = next;
    }
    EXPECT_TRUE(core.done());
    EXPECT_GE(core.instructionsRetired(), 50u);
    EXPECT_LT(core.instructionsRetired(), 70u);
}

TEST(Core, ExhaustedTraceEndsCleanly)
{
    CoreParams params;
    params.instrBudget = ~0ull;
    std::deque<workload::TraceRecord> records{rec(5, 0x40)};
    ScriptedTrace trace(records);
    Core core(0, params, &trace);
    core.setAccessFn([](std::uint32_t, const workload::TraceRecord &,
                        Tick) { return Core::AccessOutcome{}; });
    Tick t = 0;
    for (int i = 0; i < 10 && !core.done(); ++i) {
        const Tick next = core.tryProgress(t);
        if (next == kTickMax)
            break;
        t = next;
    }
    EXPECT_TRUE(core.done());
}

TEST(Core, HigherMlpRaisesThroughputUnderLatency)
{
    // With a fixed memory latency, MLP 8 beats MLP 1 substantially.
    auto run_with_mlp = [](std::uint32_t mlp) {
        CoreParams params;
        params.maxOutstanding = mlp;
        params.instrBudget = 2000;
        std::deque<workload::TraceRecord> records;
        for (int i = 0; i < 300; ++i)
            records.push_back(rec(4, 0x1000 + i * 64));
        ScriptedTrace trace(records);
        Core core(0, params, &trace);

        // Completions arrive 100ns after issue; simulate manually.
        std::vector<Tick> inflight;
        core.setAccessFn([&](std::uint32_t,
                             const workload::TraceRecord &, Tick now) {
            inflight.push_back(now + nsToTick(100.0));
            Core::AccessOutcome o;
            o.missOutstanding = true;
            return o;
        });
        Tick t = 0;
        while (!core.done()) {
            Tick next = core.tryProgress(t);
            if (next == kTickMax) {
                if (inflight.empty())
                    break;
                // Deliver the earliest completion.
                auto it = std::min_element(inflight.begin(),
                                           inflight.end());
                t = std::max(t, *it);
                inflight.erase(it);
                core.onCompletion(t);
                continue;
            }
            t = next;
        }
        return core.ipc();
    };

    const double ipc1 = run_with_mlp(1);
    const double ipc8 = run_with_mlp(8);
    EXPECT_GT(ipc8, ipc1 * 3.0);
}

} // namespace
} // namespace mithril::cpu
