/**
 * @file
 * Differential tests: the optimized implementations checked against
 * naive reference models under long random operation sequences.
 *
 *  - CbsTable (O(1) stream-summary) vs a literal O(N)-scan CbS.
 *  - The command-level harness's RFM/REF accounting vs closed-form
 *    cadence expectations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.hh"
#include "core/bounds.hh"
#include "core/cbs_table.hh"
#include "core/mithril.hh"
#include "sim/act_harness.hh"

namespace mithril::core
{
namespace
{

/**
 * Literal Counter-based Summary, straight from the paper's Figure 3:
 * a flat array scanned linearly. Deliberately simple — this is the
 * specification the fast table must match.
 */
class ReferenceCbs
{
  public:
    explicit ReferenceCbs(std::uint32_t n)
        : rows_(n, kInvalidRow), counts_(n, 0)
    {
    }

    std::uint64_t
    touch(RowId row)
    {
        // Hit?
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            if (rows_[i] == row)
                return ++counts_[i];
        }
        // Miss: replace the entry with the minimum counter. To mirror
        // the fast table's tie-break we take *any* minimum; counts are
        // what we compare, and the multiset of counts is tie-break
        // independent.
        std::size_t victim = 0;
        for (std::size_t i = 1; i < rows_.size(); ++i) {
            if (counts_[i] < counts_[victim])
                victim = i;
        }
        rows_[victim] = row;
        return ++counts_[victim];
    }

    std::uint64_t
    minValue() const
    {
        return *std::min_element(counts_.begin(), counts_.end());
    }

    std::uint64_t
    maxValue() const
    {
        return *std::max_element(counts_.begin(), counts_.end());
    }

    /** Lower the given row's counter to the minimum; returns its
     *  value before the reset (kNoRow if absent). */
    std::uint64_t
    resetRowToMin(RowId row)
    {
        const std::uint64_t min = minValue();
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            if (rows_[i] == row) {
                const std::uint64_t before = counts_[i];
                counts_[i] = min;
                return before;
            }
        }
        return ~0ull;
    }

    std::vector<std::uint64_t>
    sortedCounts() const
    {
        std::vector<std::uint64_t> out = counts_;
        std::sort(out.begin(), out.end());
        return out;
    }

    std::uint64_t
    estimate(RowId row) const
    {
        for (std::size_t i = 0; i < rows_.size(); ++i)
            if (rows_[i] == row)
                return counts_[i];
        return minValue();
    }

  private:
    std::vector<RowId> rows_;
    std::vector<std::uint64_t> counts_;
};

std::vector<std::uint64_t>
sortedCounts(const CbsTable &table)
{
    std::vector<std::uint64_t> out(table.capacity(), 0);
    std::size_t i = 0;
    for (const auto &entry : table.entries())
        out[i++] = entry.count;
    std::sort(out.begin(), out.end());
    return out;
}

class CbsDifferential
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t,
                                                 double>>
{
};

TEST_P(CbsDifferential, MatchesReferenceOnRandomStreams)
{
    const auto [capacity, universe, zipf_s] = GetParam();
    CbsTable fast(capacity);
    ReferenceCbs ref(capacity);
    Rng rng(capacity * 31 + universe);

    for (int i = 0; i < 30000; ++i) {
        RowId row;
        if (zipf_s > 0.0)
            row = static_cast<RowId>(rng.nextZipf(universe, zipf_s));
        else
            row = static_cast<RowId>(rng.nextBounded(universe));

        fast.touch(row);
        ref.touch(row);

        if (i % 257 == 0) {
            // Touched rows' estimates must agree exactly; the count
            // multiset must match (tie-breaks may differ by identity
            // but never by value).
            ASSERT_EQ(fast.estimate(row), ref.estimate(row))
                << "step " << i;
            ASSERT_EQ(fast.minValue(), ref.minValue()) << "step " << i;
            ASSERT_EQ(fast.maxValue(), ref.maxValue()) << "step " << i;
            ASSERT_EQ(sortedCounts(fast), ref.sortedCounts())
                << "step " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, CbsDifferential,
    ::testing::Values(std::make_tuple(4u, 16u, 0.0),
                      std::make_tuple(16u, 64u, 0.0),
                      std::make_tuple(16u, 1024u, 0.0),
                      std::make_tuple(32u, 256u, 1.1),
                      std::make_tuple(64u, 4096u, 0.8),
                      std::make_tuple(8u, 8u, 0.0)));

TEST(CbsDifferentialReset, GreedyResetMatchesReference)
{
    // Interleave touches with greedy resets. Max-selection tie-breaks
    // are implementation-defined, so the reference resets the *same
    // row* the fast table greedily selected — after which both
    // structures must stay value-identical.
    CbsTable fast(16);
    ReferenceCbs ref(16);
    Rng rng(77);
    for (int i = 0; i < 20000; ++i) {
        const RowId row =
            static_cast<RowId>(rng.nextZipf(256, 1.0));
        fast.touch(row);
        ref.touch(row);
        if (i % 64 == 63) {
            const std::uint64_t max_before = fast.maxValue();
            const RowId selected = fast.resetMaxToMin();
            ASSERT_NE(selected, kInvalidRow);
            const std::uint64_t ref_before =
                ref.resetRowToMin(selected);
            // The fast table's greedy pick must hold the reference's
            // maximum value.
            ASSERT_EQ(ref_before, max_before) << "step " << i;
        }
        if (i % 509 == 0) {
            ASSERT_EQ(sortedCounts(fast), ref.sortedCounts())
                << "step " << i;
            ASSERT_EQ(fast.minValue(), ref.minValue());
            ASSERT_EQ(fast.maxValue(), ref.maxValue());
        }
    }
}

TEST(CbsFastPaths, TouchFastAndTouchRunMatchTouch)
{
    // The cached scalar fast path and the register-cached batch run
    // must stay value-identical to touch() under random mixed use.
    CbsTable plain(16), fast(16), run(16);
    Rng rng(99);
    std::vector<RowId> buf;
    for (int round = 0; round < 3000; ++round) {
        buf.clear();
        const std::size_t n = 1 + rng.nextBounded(24);
        for (std::size_t i = 0; i < n; ++i)
            buf.push_back(static_cast<RowId>(rng.nextZipf(128, 0.9)));

        for (RowId r : buf)
            plain.touch(r);
        for (RowId r : buf)
            fast.touchFast(r);
        std::size_t done = 0;
        while (done < buf.size()) {
            done += run.touchRun(buf.data() + done,
                                 buf.size() - done, 7, nullptr);
        }

        ASSERT_EQ(plain.touches(), fast.touches());
        ASSERT_EQ(plain.touches(), run.touches());
        if (round % 97 == 0) {
            ASSERT_EQ(sortedCounts(plain), sortedCounts(fast));
            ASSERT_EQ(sortedCounts(plain), sortedCounts(run));
            ASSERT_EQ(plain.minValue(), fast.minValue());
            ASSERT_EQ(plain.maxValue(), run.maxValue());
            ASSERT_EQ(plain.estimate(buf.back()),
                      fast.estimate(buf.back()));
            ASSERT_EQ(plain.estimate(buf.back()),
                      run.estimate(buf.back()));
            ASSERT_TRUE(fast.checkInvariants());
            ASSERT_TRUE(run.checkInvariants());
        }
    }
}

TEST(CbsFastPaths, DivisibilityTriggerMatchesModulo)
{
    // touchRun's multiply-based divisibility trigger must agree with
    // the literal est % divisor == 0 for every divisor shape.
    for (std::uint64_t d : {1ull, 2ull, 3ull, 7ull, 10ull, 781ull,
                            1562ull, 65536ull}) {
        CbsTable fast(8), ref(8);
        Rng rng(static_cast<std::uint64_t>(d * 31 + 5));
        for (int i = 0; i < 5000; ++i) {
            RowId row = static_cast<RowId>(rng.nextZipf(64, 1.0));
            bool hit = false;
            ASSERT_EQ(fast.touchRun(&row, 1, d, &hit), 1u);
            const bool expect = (ref.touch(row) % d) == 0;
            ASSERT_EQ(hit, expect) << "divisor " << d << " step " << i;
        }
    }
}

TEST(HarnessCadence, RfmAndRefCountsMatchClosedForm)
{
    // Drive exactly N ACTs and check REF/RFM counts against the
    // closed-form cadences the W term assumes.
    const dram::Timing timing = dram::ddr5_4800();
    MithrilParams params;
    params.nEntry = 64;
    params.rfmTh = 32;
    Mithril tracker(1, params);

    sim::ActHarnessConfig cfg;
    cfg.timing = timing;
    cfg.flipTh = 1u << 30;
    sim::ActHarness harness(cfg, &tracker);

    const std::uint64_t acts = 200000;
    harness.run(acts, [](std::uint64_t i) {
        return static_cast<RowId>(i % 97);
    });

    EXPECT_EQ(harness.rfms(), acts / params.rfmTh);
    // Elapsed time ~= acts*tRC + rfms*tRFM + refs*tRFC; REF count must
    // equal elapsed/tREFI within one.
    const double elapsed = static_cast<double>(harness.now());
    const double expect_refs =
        elapsed / static_cast<double>(timing.tREFI);
    EXPECT_NEAR(static_cast<double>(harness.refs()), expect_refs, 1.5);
}

TEST(HarnessCadence, WindowIntervalsMatchesHarnessTime)
{
    // The W term of Theorem 1 predicts how many RFM intervals fit in
    // one tREFW; the harness, run for exactly one window of wall
    // time, must produce W RFMs within ~1%.
    const dram::Timing timing = dram::ddr5_4800();
    MithrilParams params;
    params.nEntry = 64;
    params.rfmTh = 64;
    Mithril tracker(1, params);

    sim::ActHarnessConfig cfg;
    cfg.timing = timing;
    cfg.flipTh = 1u << 30;
    sim::ActHarness harness(cfg, &tracker);

    std::uint64_t acts = 0;
    while (harness.now() < timing.tREFW) {
        harness.activate(static_cast<RowId>(acts % 131));
        ++acts;
    }
    const double w = static_cast<double>(
        core::windowIntervals(timing, params.rfmTh));
    EXPECT_NEAR(static_cast<double>(harness.rfms()), w, w * 0.01);
}

} // namespace
} // namespace mithril::core
