/**
 * @file
 * Tests for the DRAM substrate: timing presets, bank/rank state
 * machines, energy metering, and the ground-truth RH oracle.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "dram/device.hh"
#include "dram/energy.hh"
#include "dram/rank.hh"
#include "dram/rh_oracle.hh"
#include "dram/timing.hh"

namespace mithril::dram
{
namespace
{

TEST(Timing, PaperTableIIIValues)
{
    const Timing t = ddr5_4800();
    EXPECT_EQ(t.tRFC, nsToTick(295.0));
    EXPECT_EQ(t.tRC, nsToTick(48.64));
    EXPECT_EQ(t.tRFM, nsToTick(97.28));
    EXPECT_EQ(t.tRCD, nsToTick(16.64));
    EXPECT_EQ(t.tRP, nsToTick(16.64));
    EXPECT_EQ(t.tCL, nsToTick(16.64));
    EXPECT_EQ(t.tREFW, msToTick(32.0));
    EXPECT_EQ(refreshGroups(t), 8192u);
}

TEST(Timing, PaperGeometry)
{
    const Geometry g = paperGeometry();
    EXPECT_EQ(g.channels, 2u);
    EXPECT_EQ(g.ranksPerChannel, 1u);
    EXPECT_EQ(g.banksPerRank, 32u);
    EXPECT_EQ(g.totalBanks(), 64u);
    EXPECT_EQ(g.rowBytes, 8192u);
    EXPECT_EQ(g.columnsPerRow(), 128u);
    EXPECT_GT(g.capacityBytes(), 0ull);
}

TEST(Timing, MaxActsPerWindowMagnitude)
{
    // ~32ms * 92.5% / 48.64ns ~= 608K ACTs.
    const std::uint64_t acts = maxActsPerWindow(ddr5_4800());
    EXPECT_GT(acts, 590000u);
    EXPECT_LT(acts, 620000u);
}

TEST(Timing, RfmIntervalsPaperExample)
{
    // Section III-A's example: ~310 rows * 2K fits one tREFW; the W
    // term for RFM_TH=64 is in the low thousands.
    const std::uint64_t w = rfmIntervalsPerWindow(ddr5_4800(), 64);
    EXPECT_GT(w, 8000u);
    EXPECT_LT(w, 10000u);
}

class BankTest : public ::testing::Test
{
  protected:
    Timing timing_ = ddr5_4800();
    Bank bank_{timing_};
};

TEST_F(BankTest, StartsClosed)
{
    EXPECT_FALSE(bank_.isOpen());
    EXPECT_EQ(bank_.openRow(), kInvalidRow);
    EXPECT_EQ(bank_.earliestAct(100), 100);
}

TEST_F(BankTest, ActivateOpensAndFencesColumns)
{
    bank_.doActivate(1000, 7);
    EXPECT_TRUE(bank_.isOpen());
    EXPECT_EQ(bank_.openRow(), 7u);
    EXPECT_EQ(bank_.earliestCol(1000), 1000 + timing_.tRCD);
    EXPECT_EQ(bank_.earliestPre(1000), 1000 + timing_.tRAS);
    EXPECT_EQ(bank_.earliestAct(1000), 1000 + timing_.tRC);
}

TEST_F(BankTest, ReadReturnsDataTick)
{
    bank_.doActivate(0, 3);
    const Tick col = bank_.earliestCol(0);
    const Tick data = bank_.doRead(col);
    EXPECT_EQ(data, col + timing_.tCL + timing_.tBL);
}

TEST_F(BankTest, ConsecutiveReadsSpacedByTccd)
{
    bank_.doActivate(0, 3);
    const Tick c1 = bank_.earliestCol(0);
    bank_.doRead(c1);
    EXPECT_EQ(bank_.earliestCol(c1), c1 + timing_.tCCD);
}

TEST_F(BankTest, WriteDelaysPrechargeByRecovery)
{
    bank_.doActivate(0, 3);
    const Tick col = bank_.earliestCol(0);
    bank_.doWrite(col);
    EXPECT_GE(bank_.earliestPre(col),
              col + timing_.tCWL + timing_.tBL + timing_.tWR);
}

TEST_F(BankTest, PrechargeClosesAndFencesAct)
{
    bank_.doActivate(0, 3);
    const Tick pre = bank_.earliestPre(0);
    bank_.doPrecharge(pre);
    EXPECT_FALSE(bank_.isOpen());
    EXPECT_GE(bank_.earliestAct(pre), pre + timing_.tRP);
}

TEST_F(BankTest, RefreshOccupiesBank)
{
    bank_.doRefresh(0, timing_.tRFC);
    EXPECT_EQ(bank_.earliestAct(0), timing_.tRFC);
}

TEST_F(BankTest, ActCountAccumulates)
{
    for (int i = 0; i < 3; ++i) {
        const Tick t = bank_.earliestAct(0);
        bank_.doActivate(t, 1);
        bank_.doPrecharge(bank_.earliestPre(t));
    }
    EXPECT_EQ(bank_.actCount(), 3u);
}

TEST(RankTest, TfawLimitsFourActs)
{
    const Timing timing = ddr5_4800();
    RankTiming rank(timing);
    Tick t = 0;
    for (int i = 0; i < 4; ++i) {
        t = rank.earliestAct(t);
        rank.recordAct(t);
        t += 1;
    }
    // The fifth ACT must wait for the first + tFAW.
    EXPECT_GE(rank.earliestAct(t), timing.tFAW);
}

TEST(RankTest, TrrdSpacesBackToBackActs)
{
    const Timing timing = ddr5_4800();
    RankTiming rank(timing);
    rank.recordAct(1000);
    EXPECT_EQ(rank.earliestAct(1000), 1000 + timing.tRRD);
}

TEST(Energy, AccumulatesPerOperation)
{
    EnergyParams p;
    EnergyMeter meter(p);
    meter.addAct(10);
    meter.addPre(10);
    meter.addRead(5);
    meter.addWrite(2);
    meter.addRefreshRows(8);
    meter.addPreventiveRows(4);
    meter.addTrackerOps(100);
    const double expect = 10 * p.actPj + 10 * p.prePj + 5 * p.rdPj +
                          2 * p.wrPj + 8 * p.refRowPj +
                          4 * p.prevRefRowPj + 100 * p.trackerOpPj;
    EXPECT_DOUBLE_EQ(meter.totalPj(), expect);
    EXPECT_DOUBLE_EQ(meter.protectionPj(),
                     4 * p.prevRefRowPj + 100 * p.trackerOpPj);
    meter.reset();
    EXPECT_DOUBLE_EQ(meter.totalPj(), 0.0);
}

class OracleTest : public ::testing::Test
{
  protected:
    RhOracle oracle_{2, 1024, 100, 1};
};

TEST_F(OracleTest, NeighborsAccumulateDisturbance)
{
    oracle_.onActivate(0, 10);
    oracle_.onActivate(0, 10);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(0, 9), 2.0);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(0, 11), 2.0);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(0, 10), 0.0);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(1, 9), 0.0);
}

TEST_F(OracleTest, DoubleSidedSumsBothAggressors)
{
    oracle_.onActivate(0, 10);
    oracle_.onActivate(0, 12);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(0, 11), 2.0);
}

TEST_F(OracleTest, RowRefreshResets)
{
    oracle_.onActivate(0, 10);
    oracle_.onRowRefresh(0, 11);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(0, 11), 0.0);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(0, 9), 1.0);
}

TEST_F(OracleTest, NeighborRefreshClearsVictims)
{
    oracle_.onActivate(0, 10);
    oracle_.onNeighborRefresh(0, 10);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(0, 9), 0.0);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(0, 11), 0.0);
}

TEST_F(OracleTest, BitFlipAtThreshold)
{
    for (int i = 0; i < 99; ++i)
        oracle_.onActivate(0, 10);
    EXPECT_EQ(oracle_.bitFlips(), 0u);
    oracle_.onActivate(0, 10);
    EXPECT_EQ(oracle_.bitFlips(), 2u);  // Rows 9 and 11 both flipped.
    EXPECT_EQ(oracle_.flippedRows(), 2u);
    EXPECT_DOUBLE_EQ(oracle_.maxDisturbanceEver(), 100.0);
}

TEST_F(OracleTest, FlipCountedOncePerEpisode)
{
    for (int i = 0; i < 150; ++i)
        oracle_.onActivate(0, 10);
    EXPECT_EQ(oracle_.bitFlips(), 2u);
    // Refresh then re-hammer: a new episode, new flips.
    oracle_.onNeighborRefresh(0, 10);
    for (int i = 0; i < 100; ++i)
        oracle_.onActivate(0, 10);
    EXPECT_EQ(oracle_.bitFlips(), 4u);
}

TEST_F(OracleTest, AutoRefreshRotatesThroughRows)
{
    oracle_.onActivate(0, 1);  // Disturbs rows 0 and 2.
    // 1024 rows / 256 groups = 4 rows per REF: rows 0-3 refreshed.
    oracle_.onAutoRefresh(0, 256);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(0, 2), 0.0);
    // A full sweep of 256 REFs refreshes every row.
    oracle_.onActivate(0, 500);
    for (int i = 0; i < 256; ++i)
        oracle_.onAutoRefresh(0, 256);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(0, 499), 0.0);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(0, 501), 0.0);
}

TEST_F(OracleTest, EdgeRowsHaveOneNeighbor)
{
    oracle_.onActivate(0, 0);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(0, 1), 1.0);
    oracle_.onActivate(0, 1023);
    EXPECT_DOUBLE_EQ(oracle_.disturbance(0, 1022), 1.0);
}

TEST(OracleBlastRadius, Distance2QuarterWeight)
{
    RhOracle oracle(1, 1024, 100, 2);
    oracle.onActivate(0, 10);
    EXPECT_DOUBLE_EQ(oracle.disturbance(0, 9), 1.0);
    EXPECT_DOUBLE_EQ(oracle.disturbance(0, 8), 0.25);
    EXPECT_DOUBLE_EQ(oracle.disturbance(0, 12), 0.25);
}

TEST(OracleBlastRadius, NeighborRefreshCoversRadius)
{
    RhOracle oracle(1, 1024, 100, 2);
    oracle.onActivate(0, 10);
    oracle.onNeighborRefresh(0, 10);
    EXPECT_DOUBLE_EQ(oracle.disturbance(0, 8), 0.0);
    EXPECT_DOUBLE_EQ(oracle.disturbance(0, 12), 0.0);
}

TEST(DeviceTest, ActivateInformsOracleAndMeters)
{
    const Timing timing = ddr5_4800();
    Geometry geom = paperGeometry();
    Device device(timing, geom, 1000);
    std::vector<RowId> arr;
    device.activate(3, 50, 0, arr);
    EXPECT_EQ(device.energy().acts(), 1u);
    EXPECT_DOUBLE_EQ(device.oracle().disturbance(3, 51), 1.0);
    EXPECT_TRUE(device.bank(3).isOpen());
}

TEST(DeviceTest, RfmWithoutTrackerSkips)
{
    const Timing timing = ddr5_4800();
    Device device(timing, paperGeometry(), 1000);
    EXPECT_EQ(device.rfm(0, 0), 0u);
    EXPECT_EQ(device.rfmCount(), 1u);
    EXPECT_EQ(device.rfmSkipped(), 1u);
}

TEST(DeviceTest, PreventiveRefreshClearsVictimsAndCharges)
{
    const Timing timing = ddr5_4800();
    Device device(timing, paperGeometry(), 1000);
    std::vector<RowId> arr;
    device.activate(0, 100, 0, arr);
    device.precharge(0, device.bank(0).earliestPre(0));
    device.preventiveRefresh(0, 100, timing.tRC * 4);
    EXPECT_DOUBLE_EQ(device.oracle().disturbance(0, 101), 0.0);
    EXPECT_EQ(device.energy().preventiveRows(), 2u);
    EXPECT_EQ(device.preventiveCount(), 1u);
}

TEST(DeviceTest, AutoRefreshBlocksEveryBankOfRank)
{
    const Timing timing = ddr5_4800();
    Device device(timing, paperGeometry(), 1000);
    device.autoRefreshRank(0, 1000);
    for (BankId b = 0; b < 32; ++b)
        EXPECT_GE(device.bank(b).earliestAct(1000),
                  1000 + timing.tRFC);
    // The other channel's rank is untouched.
    EXPECT_EQ(device.bank(32).earliestAct(1000), 1000);
}

TEST(DeviceTest, RankAndChannelIndexing)
{
    const Timing timing = ddr5_4800();
    Device device(timing, paperGeometry(), 1000);
    EXPECT_EQ(device.rankOf(0), 0u);
    EXPECT_EQ(device.rankOf(31), 0u);
    EXPECT_EQ(device.rankOf(32), 1u);
    EXPECT_EQ(device.channelOf(31), 0u);
    EXPECT_EQ(device.channelOf(32), 1u);
}

} // namespace
} // namespace mithril::dram
