/**
 * @file
 * Negative-path and edge-case tests: invariant violations must panic
 * (never corrupt state silently), configuration errors must be fatal
 * with a message, and boundary parameters must behave.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/logging.hh"
#include "core/bounds.hh"
#include "core/cbs_table.hh"
#include "core/config_solver.hh"
#include "core/mithril.hh"
#include "dram/bank.hh"
#include "dram/rh_oracle.hh"
#include "mc/address_map.hh"
#include "registry/scheme_registry.hh"
#include "sim/act_harness.hh"

namespace mithril
{
namespace
{

/** RAII guard that routes panic/fatal into exceptions and captures
 *  the log so assertion spam stays out of the test output. */
class FatalGuard
{
  public:
    FatalGuard()
    {
        setLogThrowOnFatal(true);
        setLogCapture(&capture_);
    }

    ~FatalGuard()
    {
        setLogCapture(nullptr);
        setLogThrowOnFatal(false);
    }

    const std::string &log() const { return capture_; }

  private:
    std::string capture_;
};

TEST(EdgeBank, DoubleActivatePanics)
{
    FatalGuard guard;
    dram::Timing timing = dram::ddr5_4800();
    dram::Bank bank(timing);
    bank.doActivate(0, 1);
    EXPECT_THROW(bank.doActivate(timing.tRC, 2), std::runtime_error);
}

TEST(EdgeBank, PrechargeClosedBankPanics)
{
    FatalGuard guard;
    dram::Timing timing = dram::ddr5_4800();
    dram::Bank bank(timing);
    EXPECT_THROW(bank.doPrecharge(0), std::runtime_error);
}

TEST(EdgeBank, ReadClosedBankPanics)
{
    FatalGuard guard;
    dram::Timing timing = dram::ddr5_4800();
    dram::Bank bank(timing);
    EXPECT_THROW(bank.doRead(0), std::runtime_error);
}

TEST(EdgeBank, EarlyActivatePanics)
{
    FatalGuard guard;
    dram::Timing timing = dram::ddr5_4800();
    dram::Bank bank(timing);
    bank.doActivate(0, 1);
    bank.doPrecharge(bank.earliestPre(0));
    // tRP not yet elapsed.
    EXPECT_THROW(bank.doActivate(bank.earliestAct(0) - 1, 2),
                 std::runtime_error);
}

TEST(EdgeOracle, OutOfRangeRowPanics)
{
    FatalGuard guard;
    dram::RhOracle oracle(1, 128, 100);
    EXPECT_THROW(oracle.onActivate(0, 128), std::runtime_error);
    EXPECT_THROW(oracle.onActivate(1, 0), std::runtime_error);
}

TEST(EdgeOracle, SingleRowBankDegenerate)
{
    // Rows 0-only bank: activations disturb nothing (no neighbours).
    dram::RhOracle oracle(1, 1, 100);
    oracle.onActivate(0, 0);
    EXPECT_EQ(oracle.bitFlips(), 0u);
    EXPECT_DOUBLE_EQ(oracle.maxDisturbanceEver(), 0.0);
}

TEST(EdgeCbs, CapacityOnePlusResets)
{
    core::CbsTable table(1);
    table.touch(5);
    table.touch(6);  // Evicts 5, inherits its count.
    EXPECT_EQ(table.estimate(6), 2u);
    EXPECT_EQ(table.resetMaxToMin(), 6u);
    EXPECT_TRUE(table.checkInvariants());
}

TEST(EdgeCbs, TinyCounterBitsRejected)
{
    FatalGuard guard;
    EXPECT_THROW(core::CbsTable(4, 1), std::runtime_error);
    EXPECT_THROW(core::CbsTable(0, 8), std::runtime_error);
}

TEST(EdgeCbs, WrappedLessRejectsBadBits)
{
    FatalGuard guard;
    EXPECT_THROW(core::CbsTable::wrappedLess(1, 2, 1),
                 std::runtime_error);
    EXPECT_THROW(core::CbsTable::wrappedLess(1, 2, 65),
                 std::runtime_error);
}

TEST(EdgeFactory, UnknownSchemeNameThrowsWithCandidates)
{
    try {
        registry::makeScheme("no-such-scheme", ParamSet(),
                             {dram::ddr5_4800(),
                              dram::paperGeometry()});
        FAIL() << "unknown scheme was accepted";
    } catch (const registry::SpecError &err) {
        EXPECT_NE(std::string(err.what()).find("mithril"),
                  std::string::npos);
    }
}

TEST(EdgeFactory, InfeasibleMithrilConfigThrows)
{
    registry::SchemeKnobs knobs;
    knobs.flipTh = 1500;
    knobs.rfmTh = 512;  // Infeasible per Figure 6.
    try {
        registry::makeScheme("mithril", knobs.toParams(),
                             {dram::ddr5_4800(),
                              dram::paperGeometry()});
        FAIL() << "infeasible configuration was accepted";
    } catch (const registry::SpecError &err) {
        EXPECT_NE(std::string(err.what()).find("infeasible"),
                  std::string::npos);
    }
}

TEST(EdgeSolver, TinyFlipThInfeasibleEverywhere)
{
    core::ConfigSolver solver(dram::ddr5_4800(),
                              dram::paperGeometry());
    // FlipTH 64 with RFM_TH 64: even one entry's harmonic term (64)
    // exceeds FlipTH/2 = 32.
    EXPECT_EQ(solver.minEntries(64, 64), 0u);
}

TEST(EdgeSolver, EffectBelowOneRejected)
{
    FatalGuard guard;
    EXPECT_THROW(core::isSafeConfig(dram::ddr5_4800(), 16, 64, 1000,
                                    0, 0.0),
                 std::runtime_error);
}

TEST(EdgeAddressMap, NonPowerOfTwoGeometryPanics)
{
    FatalGuard guard;
    dram::Geometry geom = dram::paperGeometry();
    geom.banksPerRank = 24;
    EXPECT_THROW(mc::AddressMap map(geom), std::runtime_error);
}

TEST(EdgeHarness, ZeroActsRunIsClean)
{
    sim::ActHarnessConfig cfg;
    cfg.timing = dram::ddr5_4800();
    cfg.flipTh = 1000;
    sim::ActHarness harness(cfg, nullptr);
    harness.run(0, [](std::uint64_t) { return RowId{0}; });
    EXPECT_EQ(harness.acts(), 0u);
    EXPECT_EQ(harness.now(), 0);
}

TEST(EdgeMithril, RfmThOneDegenerate)
{
    // One RFM per ACT: every activation is immediately countered.
    core::MithrilParams params;
    params.nEntry = 2;
    params.rfmTh = 1;
    core::Mithril tracker(1, params);

    sim::ActHarnessConfig cfg;
    cfg.timing = dram::ddr5_4800();
    cfg.flipTh = 16;  // Absurdly fragile DRAM.
    sim::ActHarness harness(cfg, &tracker);
    harness.run(5000, [](std::uint64_t i) {
        return static_cast<RowId>(100 + 2 * (i % 2));
    });
    EXPECT_EQ(harness.oracle().bitFlips(), 0u);
    EXPECT_EQ(harness.rfms(), 5000u);
}

TEST(EdgeMithril, EdgeRowAggressorHandled)
{
    // Hammering row 0 (one-sided neighbourhood) must be tracked and
    // refreshed without touching a negative row index.
    core::MithrilParams params;
    params.nEntry = 8;
    params.rfmTh = 16;
    core::Mithril tracker(1, params);

    sim::ActHarnessConfig cfg;
    cfg.timing = dram::ddr5_4800();
    cfg.flipTh = 2000;
    cfg.rowsPerBank = 1024;
    sim::ActHarness harness(cfg, &tracker);
    harness.run(100000, [](std::uint64_t i) {
        return static_cast<RowId>((i % 2) ? 0 : 2);
    });
    EXPECT_EQ(harness.oracle().bitFlips(), 0u);
}

TEST(EdgeMithril, LastRowAggressorHandled)
{
    core::MithrilParams params;
    params.nEntry = 8;
    params.rfmTh = 16;
    core::Mithril tracker(1, params);

    sim::ActHarnessConfig cfg;
    cfg.timing = dram::ddr5_4800();
    cfg.flipTh = 2000;
    cfg.rowsPerBank = 1024;
    sim::ActHarness harness(cfg, &tracker);
    harness.run(100000, [](std::uint64_t i) {
        return static_cast<RowId>((i % 2) ? 1023 : 1021);
    });
    EXPECT_EQ(harness.oracle().bitFlips(), 0u);
}

} // namespace
} // namespace mithril
