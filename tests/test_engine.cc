/**
 * @file
 * ActStream engine equivalence and source tests.
 *
 * The centrepiece is the golden equivalence suite: a verbatim copy of
 * the pre-refactor single-bank ActHarness loop (ReferenceHarness
 * below, frozen at the PR-2 state) is driven head-to-head against
 * ActStreamEngine — batched dispatch at several batch sizes and
 * scalar dispatch — for EVERY registered scheme, and the two must
 * agree byte-for-byte on acts/refs/rfms/preventive counts, virtual
 * time, and the ground-truth oracle. This is what licenses routing
 * all safety sweeps through the batched hot loop.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <unistd.h>
#include <functional>
#include <tuple>
#include <string>
#include <vector>

#include "common/random.hh"
#include "dram/rh_oracle.hh"
#include "dram/timing.hh"
#include "engine/act_stream_engine.hh"
#include "engine/sources.hh"
#include "registry/scheme_registry.hh"
#include "registry/source_registry.hh"
#include "workload/spec_like.hh"
#include "workload/trace_file.hh"

namespace mithril
{
namespace
{

// --------------------------------------------------- reference copy

/** Pre-refactor ActHarness, copied verbatim (modulo naming): the
 *  specification the engine must reproduce exactly. */
class ReferenceHarness
{
  public:
    ReferenceHarness(const dram::Timing &timing,
                     std::uint32_t rows_per_bank,
                     std::uint32_t flip_th, std::uint32_t blast_radius,
                     trackers::RhProtection *tracker)
        : timing_(timing), blastRadius_(blast_radius),
          tracker_(tracker),
          oracle_(1, rows_per_bank, flip_th, blast_radius)
    {
        nextRef_ = timing_.tREFI;
    }

    void
    activate(RowId row)
    {
        while (now_ >= nextRef_) {
            oracle_.onAutoRefresh(0, dram::refreshGroups(timing_));
            if (tracker_)
                tracker_->onRefresh(0, nextRef_);
            now_ += timing_.tRFC;
            nextRef_ += timing_.tREFI;
            ++refs_;
        }

        oracle_.onActivate(0, row);
        ++acts_;
        scratch_.clear();
        if (tracker_)
            tracker_->onActivate(0, row, now_, scratch_);
        now_ += timing_.tRC;

        for (RowId aggressor : scratch_) {
            oracle_.onNeighborRefresh(0, aggressor);
            now_ += static_cast<Tick>(2 * blastRadius_) * timing_.tRC;
            ++preventive_;
        }

        if (tracker_ && tracker_->usesRfm() &&
            ++raa_ >= tracker_->rfmTh()) {
            raa_ = 0;
            if (tracker_->rfmPending(0)) {
                scratch_.clear();
                tracker_->onRfm(0, now_, scratch_);
                for (RowId aggressor : scratch_) {
                    oracle_.onNeighborRefresh(0, aggressor);
                    ++preventive_;
                }
                now_ += timing_.tRFM;
                ++rfms_;
            }
        }
    }

    void
    run(std::uint64_t count,
        const std::function<RowId(std::uint64_t)> &row_source)
    {
        for (std::uint64_t i = 0; i < count; ++i)
            activate(row_source(i));
    }

    const dram::RhOracle &oracle() const { return oracle_; }
    Tick now() const { return now_; }
    std::uint64_t acts() const { return acts_; }
    std::uint64_t refs() const { return refs_; }
    std::uint64_t rfms() const { return rfms_; }
    std::uint64_t preventive() const { return preventive_; }

  private:
    dram::Timing timing_;
    std::uint32_t blastRadius_;
    trackers::RhProtection *tracker_;
    dram::RhOracle oracle_;
    Tick now_ = 0;
    Tick nextRef_;
    std::uint32_t raa_ = 0;
    std::uint64_t acts_ = 0;
    std::uint64_t refs_ = 0;
    std::uint64_t rfms_ = 0;
    std::uint64_t preventive_ = 0;
    std::vector<RowId> scratch_;
};

/** A source that hands the engine at most `chunk` records per fill —
 *  exercises run-cutting at every batch size. */
class ChunkedSource : public engine::ActSource
{
  public:
    ChunkedSource(std::uint64_t count,
                  std::function<RowId(std::uint64_t)> fn,
                  std::size_t chunk)
        : count_(count), fn_(std::move(fn)), chunk_(chunk)
    {
    }

    std::string name() const override { return "chunked"; }

    std::size_t
    fill(engine::ActBatch &batch, std::size_t limit) override
    {
        std::size_t appended = 0;
        while (produced_ < count_ && appended < chunk_ &&
               appended < limit && !batch.full()) {
            batch.push(0, fn_(produced_));
            ++produced_;
            ++appended;
        }
        return appended;
    }

  private:
    std::uint64_t count_;
    std::function<RowId(std::uint64_t)> fn_;
    std::size_t chunk_;
    std::uint64_t produced_ = 0;
};

/** Mixed adversarial pattern: hammer pairs, rotation, and random hot
 *  rows — trips ARR, RFM, REF, and (for CBS schemes) evictions. */
RowId
patternRow(std::uint64_t i, Rng &rng)
{
    switch (i % 4) {
      case 0:
      case 1:
        return 2000 + 2 * static_cast<RowId>(i % 2);
      case 2:
        return 3000 + 2 * static_cast<RowId>(i % 600);
      default:
        return 2000 + static_cast<RowId>(rng.nextBounded(1024));
    }
}

constexpr std::uint32_t kRows = 65536;
constexpr std::uint32_t kFlipTh = 3125;
constexpr std::uint64_t kActs = 150000;

std::unique_ptr<trackers::RhProtection>
makeTracker(const std::string &scheme, const dram::Geometry &geom)
{
    registry::SchemeKnobs knobs;
    knobs.flipTh = kFlipTh;
    return registry::makeScheme(scheme, knobs.toParams(),
                                {dram::ddr5_4800(), geom});
}

struct RunOutcome
{
    std::uint64_t acts, refs, rfms, preventive;
    Tick now;
    double maxDisturbance;
    std::uint64_t bitFlips;
    std::uint64_t flippedRows;
    /** Tracker logic-op count: pins the batch fast paths to the exact
     *  per-ACT accounting of the scalar loop. */
    std::uint64_t logicOps;
};

bool
operator==(const RunOutcome &a, const RunOutcome &b)
{
    return a.acts == b.acts && a.refs == b.refs && a.rfms == b.rfms &&
           a.preventive == b.preventive && a.now == b.now &&
           a.maxDisturbance == b.maxDisturbance &&
           a.bitFlips == b.bitFlips &&
           a.flippedRows == b.flippedRows &&
           a.logicOps == b.logicOps;
}

std::ostream &
operator<<(std::ostream &os, const RunOutcome &o)
{
    return os << "acts=" << o.acts << " refs=" << o.refs
              << " rfms=" << o.rfms << " prev=" << o.preventive
              << " now=" << o.now << " maxDist=" << o.maxDisturbance
              << " flips=" << o.bitFlips
              << " flippedRows=" << o.flippedRows
              << " logicOps=" << o.logicOps;
}

RunOutcome
runReference(const std::string &scheme)
{
    dram::Geometry geom = dram::paperGeometry();
    geom.rowsPerBank = kRows;
    auto tracker = makeTracker(scheme, geom);
    ReferenceHarness ref(dram::ddr5_4800(), kRows, kFlipTh, 1,
                         tracker.get());
    Rng rng(1234);
    ref.run(kActs, [&](std::uint64_t i) { return patternRow(i, rng); });
    return {ref.acts(),
            ref.refs(),
            ref.rfms(),
            ref.preventive(),
            ref.now(),
            ref.oracle().maxDisturbanceEver(),
            ref.oracle().bitFlips(),
            ref.oracle().flippedRows(),
            tracker ? tracker->logicOps() : 0};
}

RunOutcome
runEngine(const std::string &scheme,
          engine::EngineConfig::Dispatch dispatch, std::size_t chunk)
{
    dram::Geometry geom = dram::paperGeometry();
    geom.rowsPerBank = kRows;
    auto tracker = makeTracker(scheme, geom);
    engine::EngineConfig cfg = engine::EngineConfig::singleBank(
        dram::ddr5_4800(), kRows, kFlipTh, 1);
    cfg.dispatch = dispatch;
    engine::ActStreamEngine eng(cfg, tracker.get());
    Rng rng(1234);
    ChunkedSource source(
        kActs, [&](std::uint64_t i) { return patternRow(i, rng); },
        chunk);
    eng.run(source);
    return {eng.acts(),
            eng.refs(),
            eng.rfms(),
            eng.preventiveRefreshes(),
            eng.now(0),
            eng.oracle().maxDisturbanceEver(),
            eng.oracle().bitFlips(),
            eng.oracle().flippedRows(),
            tracker ? tracker->logicOps() : 0};
}

class EngineEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EngineEquivalence, BatchAndScalarMatchReferenceHarness)
{
    const std::string scheme = GetParam();
    const RunOutcome ref = runReference(scheme);

    const RunOutcome scalar = runEngine(
        scheme, engine::EngineConfig::Dispatch::Scalar, 1024);
    EXPECT_TRUE(scalar == ref)
        << scheme << "\n  scalar: " << scalar << "\n  ref:    " << ref;

    for (std::size_t chunk : {1u, 7u, 64u, 1000u, 4096u}) {
        const RunOutcome batched = runEngine(
            scheme, engine::EngineConfig::Dispatch::Batched, chunk);
        EXPECT_TRUE(batched == ref)
            << scheme << " chunk=" << chunk << "\n  batch: " << batched
            << "\n  ref:   " << ref;
    }
}

std::vector<std::string>
allSchemes()
{
    return registry::schemeRegistry().names();
}

std::string
schemeCaseName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string s = info.param;
    for (auto &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredSchemes, EngineEquivalence,
                         ::testing::ValuesIn(allSchemes()),
                         schemeCaseName);

// ----------------------------------------------- multi-bank engine

TEST(EngineMultiBank, BatchedMatchesScalarAt16Banks)
{
    const dram::Timing timing = dram::ddr5_4800();
    dram::Geometry geom = dram::paperGeometry();
    geom.channels = 1;
    geom.ranksPerChannel = 1;
    geom.banksPerRank = 16;

    for (const std::string &scheme :
         {std::string("mithril"), std::string("graphene"),
          std::string("para")}) {
        auto run = [&](engine::EngineConfig::Dispatch dispatch) {
            auto tracker = makeTracker(scheme, geom);
            engine::EngineConfig cfg;
            cfg.timing = timing;
            cfg.geometry = geom;
            cfg.flipTh = kFlipTh;
            cfg.dispatch = dispatch;
            engine::ActStreamEngine eng(cfg, tracker.get());

            ParamSet params;
            params.set("attack", "multi-sided");
            auto source = registry::makeActSource(
                "attack", params,
                {timing, geom, kFlipTh, /*seed=*/7});
            eng.run(*source, 400000);
            return eng;
        };

        const auto batched =
            run(engine::EngineConfig::Dispatch::Batched);
        const auto scalar = run(engine::EngineConfig::Dispatch::Scalar);

        EXPECT_EQ(batched.acts(), 400000u) << scheme;
        EXPECT_EQ(batched.acts(), scalar.acts()) << scheme;
        EXPECT_EQ(batched.refs(), scalar.refs()) << scheme;
        EXPECT_EQ(batched.rfms(), scalar.rfms()) << scheme;
        EXPECT_EQ(batched.preventiveRefreshes(),
                  scalar.preventiveRefreshes())
            << scheme;
        EXPECT_EQ(batched.oracle().maxDisturbanceEver(),
                  scalar.oracle().maxDisturbanceEver())
            << scheme;
        EXPECT_EQ(batched.oracle().bitFlips(),
                  scalar.oracle().bitFlips())
            << scheme;
        for (BankId b = 0; b < 16; ++b) {
            EXPECT_EQ(batched.actsAt(b), scalar.actsAt(b))
                << scheme << " bank " << b;
            EXPECT_EQ(batched.now(b), scalar.now(b))
                << scheme << " bank " << b;
            EXPECT_EQ(batched.preventiveRefreshesAt(b),
                      scalar.preventiveRefreshesAt(b))
                << scheme << " bank " << b;
        }
        // All 16 banks actually hammered.
        for (BankId b = 0; b < 16; ++b)
            EXPECT_GT(batched.actsAt(b), 0u) << scheme << " bank " << b;
    }
}

TEST(EngineRun, IncrementalMaxActsLosesNoRecords)
{
    // Driving the same source through many small bounded run() calls
    // must dispatch exactly the records a single unbounded run would:
    // a truncated batch's tail is carried, never dropped.
    auto run = [](bool incremental) {
        dram::Geometry geom = dram::paperGeometry();
        geom.rowsPerBank = kRows;
        auto tracker = makeTracker("mithril", geom);
        engine::EngineConfig cfg = engine::EngineConfig::singleBank(
            dram::ddr5_4800(), kRows, kFlipTh, 1);
        engine::ActStreamEngine eng(cfg, tracker.get());
        Rng rng(77);
        // Chunk 4096: every fill() over-pulls far past a 100-act cap.
        ChunkedSource source(
            20000, [&](std::uint64_t i) { return patternRow(i, rng); },
            4096);
        if (incremental) {
            std::uint64_t total = 0;
            while (total < 20000)
                total += eng.run(source, 100);
            EXPECT_EQ(total, 20000u);
        } else {
            EXPECT_EQ(eng.run(source), 20000u);
        }
        return std::make_tuple(eng.acts(), eng.now(0),
                               eng.oracle().maxDisturbanceEver());
    };
    EXPECT_EQ(run(true), run(false));
}

// ------------------------------------------------- engine sources

TEST(EngineSources, TraceFileSourceReplaysExactly)
{
    const std::string path = ::testing::TempDir() +
                             "mithril_engine_trace_" +
                             std::to_string(::getpid()) + ".trace";
    workload::SyntheticParams sp;
    sp.footprint = 32ull << 20;
    sp.meanGap = 10.0;
    sp.seed = 5;
    workload::StreamSweepGen gen(sp);
    const std::size_t n = workload::recordTrace(gen, 5000, path);
    ASSERT_EQ(n, 5000u);

    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    ParamSet params;
    params.set("trace-file", path);
    auto source = registry::makeActSource("trace-file", params,
                                          {timing, geom, 6250, 7});

    engine::EngineConfig cfg;
    cfg.timing = timing;
    cfg.geometry = geom;
    cfg.flipTh = 1u << 30;
    engine::ActStreamEngine eng(cfg, nullptr);
    EXPECT_EQ(eng.run(*source), 5000u);
    EXPECT_EQ(eng.acts(), 5000u);
}

TEST(EngineSources, UnknownSourceListsCandidates)
{
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    try {
        registry::makeActSource("no-such-source", ParamSet(),
                                {timing, geom, 6250, 7});
        FAIL() << "unknown source was accepted";
    } catch (const registry::SpecError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("trace-file"), std::string::npos);
        EXPECT_NE(what.find("attack"), std::string::npos);
    }
}

TEST(EngineSources, AttackSourceRejectsNone)
{
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    ParamSet params;
    params.set("attack", "none");
    EXPECT_THROW(registry::makeActSource("attack", params,
                                         {timing, geom, 6250, 7}),
                 registry::SpecError);
}

TEST(EngineSources, AttackSourceRejectsExplicitBankTarget)
{
    // The source assigns attack-bank per replicated bank; a
    // user-supplied value must be rejected, not silently overwritten.
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    ParamSet params;
    params.set("attack", "double-sided");
    params.set("attack-bank", "5");
    EXPECT_THROW(registry::makeActSource("attack", params,
                                         {timing, geom, 6250, 7}),
                 registry::SpecError);
}

// --------------------------------------------- throttle frontends

TEST(EngineThrottle, HonorThrottleDelaysBlacklistedActs)
{
    // BlockHammer with throttling honoured must accumulate stalls
    // under a hammer pair and stretch the stream over strictly more
    // virtual time than the advisory-ignoring run.
    const dram::Timing timing = dram::ddr5_4800();
    dram::Geometry geom = dram::paperGeometry();
    geom.rowsPerBank = kRows;

    auto run = [&](bool honor) {
        registry::SchemeKnobs knobs;
        knobs.flipTh = 1500;
        auto tracker =
            registry::makeScheme("blockhammer", knobs.toParams(),
                                 {timing, geom});
        engine::EngineConfig cfg = engine::EngineConfig::singleBank(
            timing, kRows, 1500, 1);
        cfg.honorThrottle = honor;
        engine::ActStreamEngine eng(cfg, tracker.get());
        engine::CallbackSource source(
            dram::maxActsPerWindow(timing) / 2, [](std::uint64_t i) {
                return 2000 + 2 * static_cast<RowId>(i % 2);
            });
        eng.run(source);
        return std::make_tuple(eng.throttleStalls(), eng.now(0),
                               eng.oracle().bitFlips());
    };

    const auto [stalls, now, flips] = run(true);
    const auto [free_stalls, free_now, free_flips] = run(false);
    (void)flips;
    (void)free_flips;
    EXPECT_GT(stalls, 0u);
    EXPECT_EQ(free_stalls, 0u);
    EXPECT_GT(now, free_now);
}

} // namespace
} // namespace mithril
