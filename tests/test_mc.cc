/**
 * @file
 * Tests for the memory controller: address mapping, request flow,
 * scheduling policies, auto-refresh cadence, RAA/RFM issue logic,
 * Mithril+ MRR skipping, ARR execution, and BlockHammer throttling
 * integration.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/mithril.hh"
#include "dram/device.hh"
#include "mc/address_map.hh"
#include "mc/controller.hh"
#include "trackers/blockhammer.hh"

namespace mithril::mc
{
namespace
{

// --------------------------------------------------------- AddressMap

class AddressMapTest : public ::testing::Test
{
  protected:
    dram::Geometry geom_ = dram::paperGeometry();
    AddressMap map_{geom_};
};

TEST_F(AddressMapTest, ComposeDecodeRoundTrip)
{
    for (std::uint32_t ch = 0; ch < geom_.channels; ++ch) {
        for (std::uint32_t b : {0u, 7u, 31u}) {
            for (RowId row : {0u, 1234u, 65535u}) {
                for (std::uint32_t col : {0u, 63u, 127u}) {
                    Request req;
                    req.addr = map_.compose(ch, 0, b, row, col);
                    map_.decode(req);
                    EXPECT_EQ(req.channel, ch);
                    EXPECT_EQ(req.rank, 0u);
                    EXPECT_EQ(req.row, row);
                    EXPECT_EQ(req.column, col);
                    EXPECT_EQ(req.bank, map_.flatBank(ch, 0, b));
                }
            }
        }
    }
}

TEST_F(AddressMapTest, ConsecutiveLinesInterleaveChannelsThenBanks)
{
    Request a, b, c;
    a.addr = 0;
    b.addr = 64;
    c.addr = 64ull * 2 * 4;  // Past one channel's 4-line chunk.
    map_.decode(a);
    map_.decode(b);
    map_.decode(c);
    EXPECT_NE(a.channel, b.channel);
    EXPECT_EQ(a.channel, c.channel);
    EXPECT_NE(a.bank, c.bank);  // Bank hop after 4 lines.
    EXPECT_EQ(a.row, c.row);
}

TEST_F(AddressMapTest, SequentialStreamTouchesFourLinesPerBankVisit)
{
    // The minimalist-open contract: within one row visit, exactly 4
    // consecutive lines of a channel land in the same (bank, row).
    Request first;
    first.addr = 0;
    map_.decode(first);
    int same = 0;
    for (int i = 1; i < 4; ++i) {
        Request r;
        r.addr = static_cast<Addr>(i) * 64 * geom_.channels;
        map_.decode(r);
        same += (r.bank == first.bank && r.row == first.row);
    }
    EXPECT_EQ(same, 3);
}

TEST_F(AddressMapTest, FlatBankCoversAllBanks)
{
    std::vector<bool> seen(geom_.totalBanks(), false);
    for (std::uint32_t ch = 0; ch < geom_.channels; ++ch)
        for (std::uint32_t r = 0; r < geom_.ranksPerChannel; ++r)
            for (std::uint32_t b = 0; b < geom_.banksPerRank; ++b)
                seen[map_.flatBank(ch, r, b)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

// ------------------------------------- AddressMap, other geometries

/** The multi-channel/multi-rank geometry grid the frontend split must
 *  decode correctly: channels in {1,2,4} x ranks in {1,2}. */
std::vector<dram::Geometry>
geometryGrid()
{
    std::vector<dram::Geometry> grid;
    for (std::uint32_t channels : {1u, 2u, 4u}) {
        for (std::uint32_t ranks : {1u, 2u}) {
            dram::Geometry g = dram::paperGeometry();
            g.channels = channels;
            g.ranksPerChannel = ranks;
            grid.push_back(g);
        }
    }
    return grid;
}

TEST(AddressMapGeometries, ComposeDecodeRoundTripsEveryGeometry)
{
    for (const dram::Geometry &geom : geometryGrid()) {
        AddressMap map(geom);
        for (std::uint32_t ch = 0; ch < geom.channels; ++ch) {
            for (std::uint32_t r = 0; r < geom.ranksPerChannel; ++r) {
                for (std::uint32_t b :
                     {0u, 5u, geom.banksPerRank - 1}) {
                    for (RowId row :
                         {0u, 77u, geom.rowsPerBank - 1}) {
                        for (std::uint32_t col :
                             {0u, geom.columnsPerRow() - 1}) {
                            Request req;
                            req.addr =
                                map.compose(ch, r, b, row, col);
                            map.decode(req);
                            EXPECT_EQ(req.channel, ch);
                            EXPECT_EQ(req.rank, r);
                            EXPECT_EQ(req.row, row);
                            EXPECT_EQ(req.column, col);
                            EXPECT_EQ(req.bank,
                                      map.flatBank(ch, r, b));
                        }
                    }
                }
            }
        }
    }
}

TEST(AddressMapGeometries, DecodeComposeRoundTripsAddresses)
{
    // The inverse direction: decode an address, re-compose the decoded
    // fields, and land on the same address — over a stride that walks
    // channel, bank, rank, and row bits in every geometry.
    for (const dram::Geometry &geom : geometryGrid()) {
        AddressMap map(geom);
        for (std::uint64_t i = 0; i < 4096; ++i) {
            const Addr addr = i * 64 * 1031;  // Coprime stride.
            if (addr >= geom.capacityBytes())
                break;
            Request req;
            req.addr = addr;
            map.decode(req);
            const std::uint32_t bank_in_rank =
                req.bank % geom.banksPerRank;
            EXPECT_EQ(map.compose(req.channel, req.rank, bank_in_rank,
                                  req.row, req.column),
                      addr);
        }
    }
}

TEST(AddressMapGeometries, RowXorBankPermutationIsItsOwnInverse)
{
    // For a fixed row, the row-XOR spreads bank_in_rank through a
    // permutation; composing with the decoded bank must return the
    // original address (the XOR applied twice cancels), and distinct
    // banks must stay distinct.
    for (const dram::Geometry &geom : geometryGrid()) {
        AddressMap map(geom);
        for (RowId row : {1u, 31u, 4097u}) {
            std::vector<bool> seen(geom.banksPerRank, false);
            for (std::uint32_t b = 0; b < geom.banksPerRank; ++b) {
                Request req;
                req.addr = map.compose(0, 0, b, row, 0);
                map.decode(req);
                const std::uint32_t decoded =
                    req.bank % geom.banksPerRank;
                EXPECT_EQ(decoded, b);
                EXPECT_FALSE(seen[decoded]);
                seen[decoded] = true;
            }
        }
    }
}

TEST(AddressMapGeometries, FlatBankIsBijectiveOverFullBankSpace)
{
    for (const dram::Geometry &geom : geometryGrid()) {
        AddressMap map(geom);
        std::vector<std::uint32_t> hits(geom.totalBanks(), 0);
        for (std::uint32_t ch = 0; ch < geom.channels; ++ch)
            for (std::uint32_t r = 0; r < geom.ranksPerChannel; ++r)
                for (std::uint32_t b = 0; b < geom.banksPerRank; ++b)
                    ++hits[map.flatBank(ch, r, b)];
        for (std::uint32_t count : hits)
            EXPECT_EQ(count, 1u);  // Onto and one-to-one.
    }
}

// --------------------------------------------------------- Controller

class ControllerTest : public ::testing::Test
{
  protected:
    void
    build(std::unique_ptr<trackers::RhProtection> tracker = nullptr,
          ControllerParams params = ControllerParams{})
    {
        tracker_ = std::move(tracker);
        device_ = std::make_unique<dram::Device>(timing_, geom_,
                                                 100000);
        device_->setTracker(tracker_.get());
        map_ = std::make_unique<AddressMap>(geom_);
        ctrl_ = std::make_unique<Controller>(*device_, *map_, params);
        ctrl_->setCompletionCallback(
            [this](const Request &req, Tick t) {
                completions_.emplace_back(req, t);
            });
    }

    /** Drive the controller until idle or `until`. */
    void
    drain(Tick until = msToTick(1.0))
    {
        Tick now = 0;
        while (now < until) {
            const Tick next = ctrl_->service(now);
            if (ctrl_->idle() && completionsStable())
                break;
            now = next;
        }
    }

    bool completionsStable() const { return true; }

    Request
    makeReq(std::uint32_t bank_in_rank, RowId row, std::uint32_t col,
            bool write = false, std::uint32_t core = 0)
    {
        Request req;
        req.addr = map_->compose(0, 0, bank_in_rank, row, col);
        req.isWrite = write;
        req.coreId = core;
        map_->decode(req);
        return req;
    }

    dram::Timing timing_ = dram::ddr5_4800();
    dram::Geometry geom_ = dram::paperGeometry();
    std::unique_ptr<trackers::RhProtection> tracker_;
    std::unique_ptr<dram::Device> device_;
    std::unique_ptr<AddressMap> map_;
    std::unique_ptr<Controller> ctrl_;
    std::vector<std::pair<Request, Tick>> completions_;
    std::vector<std::size_t> positions_;
};

TEST_F(ControllerTest, SingleReadCompletesWithExpectedLatency)
{
    build();
    ASSERT_TRUE(ctrl_->enqueue(makeReq(3, 100, 5), 0));
    drain();
    ASSERT_EQ(completions_.size(), 1u);
    // ACT + tRCD + tCL + tBL, plus command-slot slack.
    const Tick expect =
        timing_.tRCD + timing_.tCL + timing_.tBL;
    EXPECT_NEAR(static_cast<double>(completions_[0].second),
                static_cast<double>(expect), 3000.0);
    EXPECT_EQ(ctrl_->stats().reads, 1u);
    EXPECT_EQ(ctrl_->stats().activates, 1u);
}

TEST_F(ControllerTest, RowHitAvoidsSecondActivate)
{
    build();
    ASSERT_TRUE(ctrl_->enqueue(makeReq(3, 100, 5), 0));
    ASSERT_TRUE(ctrl_->enqueue(makeReq(3, 100, 6), 0));
    drain();
    EXPECT_EQ(completions_.size(), 2u);
    EXPECT_EQ(ctrl_->stats().activates, 1u);
    EXPECT_EQ(ctrl_->stats().rowHits, 2u);
}

TEST_F(ControllerTest, RowConflictPrechargesAndReactivates)
{
    build();
    ASSERT_TRUE(ctrl_->enqueue(makeReq(3, 100, 5), 0));
    ASSERT_TRUE(ctrl_->enqueue(makeReq(3, 200, 5), 0));
    drain();
    EXPECT_EQ(completions_.size(), 2u);
    EXPECT_EQ(ctrl_->stats().activates, 2u);
    EXPECT_GE(ctrl_->stats().precharges, 1u);
}

TEST_F(ControllerTest, MinimalistOpenCapsRowHitStreak)
{
    build();
    for (std::uint32_t c = 0; c < 8; ++c)
        ASSERT_TRUE(ctrl_->enqueue(makeReq(3, 100, c), 0));
    drain();
    EXPECT_EQ(completions_.size(), 8u);
    // 8 same-row requests with a 4-hit cap: at least 2 activates.
    EXPECT_GE(ctrl_->stats().activates, 2u);
}

TEST_F(ControllerTest, WritesComplete)
{
    build();
    ASSERT_TRUE(ctrl_->enqueue(makeReq(1, 50, 0, true), 0));
    drain();
    ASSERT_EQ(completions_.size(), 1u);
    EXPECT_EQ(ctrl_->stats().writes, 1u);
}

TEST_F(ControllerTest, QueueCapacityEnforced)
{
    ControllerParams params;
    params.queueCapacity = 2;
    build(nullptr, params);
    EXPECT_TRUE(ctrl_->enqueue(makeReq(0, 1, 0), 0));
    EXPECT_TRUE(ctrl_->enqueue(makeReq(1, 1, 0), 0));
    EXPECT_FALSE(ctrl_->enqueue(makeReq(2, 1, 0), 0));
}

TEST_F(ControllerTest, AutoRefreshCadence)
{
    build();
    // Run for ~10 tREFI with no traffic: one REF per rank per tREFI.
    Tick now = 0;
    const Tick end = 10 * timing_.tREFI + timing_.tREFI / 2;
    while (now < end)
        now = ctrl_->service(now);
    // The channel-0 controller owns 1 of the 2 ranks, refreshed ~10
    // times (the other rank belongs to channel 1's controller).
    EXPECT_NEAR(static_cast<double>(ctrl_->stats().refreshes), 10.0,
                2.0);
}

TEST_F(ControllerTest, RfmIssuedEveryRfmThActs)
{
    core::MithrilParams mp;
    mp.nEntry = 64;
    mp.rfmTh = 16;
    build(std::make_unique<core::Mithril>(geom_.totalBanks(), mp));

    // 64 ACT-causing requests to one bank, serialized so each request
    // is a fresh activation (FR-FCFS would otherwise coalesce hits).
    for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(
            ctrl_->enqueue(makeReq(3, 100 + (i % 2) * 50, 0), 0));
        drain();
    }
    EXPECT_EQ(completions_.size(), 64u);
    // 64 demand ACTs, plus up to one reactivation per RFM (the bank
    // closes for the RFM before the pending hit drains).
    EXPECT_GE(ctrl_->stats().activates, 64u);
    EXPECT_LE(ctrl_->stats().activates, 68u);
    EXPECT_EQ(ctrl_->stats().rfmIssued, 4u);  // 64 / 16.
    EXPECT_EQ(device_->rfmCount(), 4u);
}

TEST_F(ControllerTest, MithrilPlusSkipsNeedlessRfm)
{
    core::MithrilParams mp;
    mp.nEntry = 64;
    mp.rfmTh = 16;
    mp.adTh = 100;
    mp.plusMode = true;
    build(std::make_unique<core::Mithril>(geom_.totalBanks(), mp));

    // Uniform benign pattern: spread stays below AdTH, so the MRR poll
    // cancels every RFM.
    for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(
            ctrl_->enqueue(makeReq(3, 100 + (i % 8) * 10, 0), 0));
        drain();
    }
    EXPECT_EQ(ctrl_->stats().rfmIssued, 0u);
    EXPECT_EQ(ctrl_->stats().rfmSkippedByMrr, 4u);
}

TEST_F(ControllerTest, ArrExecutedForReactiveTracker)
{
    // A tracker that requests an ARR on every 8th ACT.
    class EveryNthArr : public trackers::RhProtection
    {
      public:
        std::string name() const override { return "test"; }
        trackers::Location location() const override
        {
            return trackers::Location::Mc;
        }
        void
        onActivate(BankId, RowId row, Tick,
                   std::vector<RowId> &arr) override
        {
            if (++count_ % 8 == 0)
                arr.push_back(row);
        }
        double tableBytesPerBank() const override { return 0.0; }

      private:
        std::uint64_t count_ = 0;
    };

    build(std::make_unique<EveryNthArr>());
    for (int i = 0; i < 32; ++i) {
        ASSERT_TRUE(
            ctrl_->enqueue(makeReq(3, 100 + (i % 2) * 50, 0), 0));
        drain();
    }
    EXPECT_EQ(ctrl_->stats().arrExecuted, 4u);
    EXPECT_EQ(device_->preventiveCount(), 4u);
}

TEST_F(ControllerTest, ThrottledActIsDelayed)
{
    trackers::BlockHammerParams bp;
    bp.cbfSize = 256;
    bp.nbl = 8;
    bp.flipTh = 100;
    bp.tCbf = timing_.tREFW;
    bp.tRc = timing_.tRC;
    build(std::make_unique<trackers::BlockHammer>(geom_.totalBanks(),
                                                  bp));

    // Hammer one pair of rows well past NBL, serialized so every
    // request is a fresh ACT that the CBFs observe.
    for (int i = 0; i < 40; ++i) {
        ASSERT_TRUE(
            ctrl_->enqueue(makeReq(3, 100 + (i % 2) * 50, 0), 0));
        drain(msToTick(40.0));
    }
    EXPECT_EQ(completions_.size(), 40u);
    EXPECT_GT(ctrl_->stats().throttleStalls, 0u);
    // Throttling stretched the run: the last completion lands far
    // beyond the unthrottled time (tDelay is hundreds of us here).
    EXPECT_GT(completions_.back().second, usToTick(10.0));
}

TEST_F(ControllerTest, BlissBlacklistsStreakyCore)
{
    // Position of core 1's lone conflict request among 12 streak-y
    // core-0 requests, with and without BLISS.
    auto core1_position = [&](bool use_bliss) {
        ControllerParams params;
        params.useBliss = use_bliss;
        params.blissStreak = 2;
        build(nullptr, params);
        for (std::uint32_t c = 0; c < 12; ++c)
            ASSERT_TRUE(ctrl_->enqueue(
                makeReq(3, 100 + (c / 4) * 30, c % 4, false, 0), 0));
        ASSERT_TRUE(ctrl_->enqueue(makeReq(3, 900, 0, false, 1), 0));
        drain();
        ASSERT_EQ(completions_.size(), 13u);
        std::size_t pos = 99;
        for (std::size_t i = 0; i < completions_.size(); ++i)
            if (completions_[i].first.coreId == 1)
                pos = i;
        completions_.clear();
        positions_.push_back(pos);
    };
    core1_position(false);
    core1_position(true);
    // BLISS moves the victim core's request forward.
    EXPECT_LT(positions_[1], positions_[0]);
}

TEST_F(ControllerTest, PerBankRefreshRotatesBanks)
{
    ControllerParams params;
    params.perBankRefresh = true;
    build(nullptr, params);
    // Run idle for ~2 tREFI: each tREFI must produce banksPerRank
    // REFsb commands for the one rank this channel's controller owns.
    Tick now = 0;
    const Tick end = 2 * timing_.tREFI;
    while (now < end)
        now = ctrl_->service(now);
    const double expect = 2.0 * 1.0 * geom_.banksPerRank;
    EXPECT_NEAR(static_cast<double>(ctrl_->stats().refreshes), expect,
                8.0);
    // Only one bank is ever fenced at a time: demand traffic to other
    // banks proceeds (smoke-checked by serving a request promptly).
    ASSERT_TRUE(ctrl_->enqueue(makeReq(7, 11, 0), now));
    drain(now + usToTick(2.0));
    EXPECT_EQ(completions_.size(), 1u);
}

TEST_F(ControllerTest, RefsbCadenceSpansExactlyTrefi)
{
    // N REFsb commands must span *exactly* tREFI: the integer division
    // tREFI / banksPerRank leaves a remainder that, if ignored, lets
    // the rotation drift early by (tREFI % banksPerRank) ticks per
    // lap. Use a timing where the remainder is maximal (31 of 32) and
    // run 400 laps so the drift — 12,400 ticks — exceeds two full
    // steps and shifts the command count.
    constexpr Tick kStep = 5000;
    timing_.tREFI = 32 * kStep + 31;
    timing_.tREFW = timing_.tREFI * 8192;
    ControllerParams params;
    params.perBankRefresh = true;
    build(nullptr, params);

    const auto bpr = static_cast<Tick>(geom_.banksPerRank);
    const Tick rem = timing_.tREFI % bpr;
    ASSERT_EQ(timing_.tREFI / bpr, kStep);
    // Same-bank busy (tRFCsb) must clear before the rotation returns
    // to a bank, or service order would perturb the cadence.
    ASSERT_GT(bpr * kStep, device_->timing().tRFCsb);

    Tick now = 0;
    const Tick end = kStep + 400 * timing_.tREFI + kStep / 2;
    while (now < end)
        now = ctrl_->service(now);

    // Exact Bresenham schedule: REFsb #k is due at
    //   step*(k+1) + floor(k*rem/bpr)
    // (global rank 0 has zero stagger). Count how many land before
    // `end`; the drifting pre-fix schedule step*(k+1) counts 2 more.
    std::uint64_t expect = 0;
    for (std::uint64_t k = 0;; ++k) {
        const Tick due = kStep * static_cast<Tick>(k + 1) +
                         static_cast<Tick>(k) * rem / bpr;
        if (due >= end)
            break;
        ++expect;
    }
    EXPECT_EQ(ctrl_->stats().refreshes, expect);
}

TEST_F(ControllerTest, PerBankRefreshKeepsOracleCovered)
{
    ControllerParams params;
    params.perBankRefresh = true;
    build(nullptr, params);
    std::vector<RowId> arr;
    device_->activate(3, 100, 0, arr);
    device_->precharge(3, device_->bank(3).earliestPre(0));
    // A full tREFW of REFsb rotation refreshes every row of the bank.
    Tick now = timing_.tRP + timing_.tRAS;
    const Tick end = now + timing_.tREFW + timing_.tREFI;
    while (now < end)
        now = ctrl_->service(now);
    EXPECT_DOUBLE_EQ(device_->oracle().disturbance(3, 101), 0.0);
}

TEST_F(ControllerTest, RaaRefDecrementDelaysRfm)
{
    core::MithrilParams mp;
    mp.nEntry = 64;
    mp.rfmTh = 16;
    ControllerParams params;
    params.raaRefDecrement = 8;
    build(std::make_unique<core::Mithril>(geom_.totalBanks(), mp),
          params);

    // 12 serialized ACTs (below RFM_TH), then idle across one tREFI so
    // a REF lands and decrements RAA by 8: 4 more ACTs must NOT yet
    // trigger an RFM (4 + 4 < 16), 12 more must.
    for (int i = 0; i < 12; ++i) {
        ASSERT_TRUE(
            ctrl_->enqueue(makeReq(3, 100 + (i % 2) * 50, 0), 0));
        drain();
    }
    Tick now = 0;
    while (now < timing_.tREFI + timing_.tRFC)
        now = ctrl_->service(now);
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ctrl_->enqueue(
            makeReq(3, 100 + (i % 2) * 50, 0), now));
        drain(now + msToTick(1.0));
    }
    EXPECT_EQ(ctrl_->stats().rfmIssued, 0u);
    for (int i = 0; i < 12; ++i) {
        ASSERT_TRUE(ctrl_->enqueue(
            makeReq(3, 100 + (i % 2) * 50, 0), now));
        drain(now + msToTick(2.0));
    }
    EXPECT_EQ(ctrl_->stats().rfmIssued, 1u);
}

TEST_F(ControllerTest, ReadLatencyHistogramPopulated)
{
    build();
    for (std::uint32_t c = 0; c < 8; ++c)
        ASSERT_TRUE(ctrl_->enqueue(makeReq(3, 100, c), 0));
    drain();
    const auto &hist = ctrl_->stats().readLatencyNs;
    EXPECT_EQ(hist.totalSamples(), 8u);
    EXPECT_NEAR(hist.mean(), ctrl_->stats().avgReadLatencyNs(), 25.0);
    EXPECT_GT(hist.percentile(0.95), 0.0);
}

TEST_F(ControllerTest, IdleReflectsPendingWork)
{
    build();
    EXPECT_TRUE(ctrl_->idle());
    ctrl_->enqueue(makeReq(0, 1, 0), 0);
    EXPECT_FALSE(ctrl_->idle());
    drain();
    EXPECT_TRUE(ctrl_->idle());
}

} // namespace
} // namespace mithril::mc
