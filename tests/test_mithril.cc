/**
 * @file
 * Tests for the Mithril tracker itself: greedy RFM selection, adaptive
 * refresh, Mithril+ mode-register behaviour, and — the centrepiece —
 * empirical validation of the Theorem 1/2 deterministic-safety claim
 * against adversarial maximum-rate activation streams via the
 * command-level harness.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/bounds.hh"
#include "core/config_solver.hh"
#include "core/mithril.hh"
#include "sim/act_harness.hh"

namespace mithril::core
{
namespace
{

MithrilParams
smallParams()
{
    MithrilParams p;
    p.nEntry = 8;
    p.rfmTh = 16;
    p.adTh = 0;
    return p;
}

TEST(Mithril, BasicIdentity)
{
    Mithril m(4, smallParams());
    EXPECT_EQ(m.name(), "Mithril");
    EXPECT_EQ(m.location(), trackers::Location::Dram);
    EXPECT_TRUE(m.usesRfm());
    EXPECT_EQ(m.rfmTh(), 16u);
    EXPECT_GT(m.tableBytesPerBank(), 0.0);
}

TEST(Mithril, PlusModeIdentity)
{
    MithrilParams p = smallParams();
    p.plusMode = true;
    Mithril m(4, p);
    EXPECT_EQ(m.name(), "Mithril+");
}

TEST(Mithril, ActivateNeverRequestsArr)
{
    Mithril m(2, smallParams());
    std::vector<RowId> arr;
    for (int i = 0; i < 100; ++i)
        m.onActivate(0, static_cast<RowId>(i % 5), 0, arr);
    EXPECT_TRUE(arr.empty());
}

TEST(Mithril, RfmSelectsHottestRow)
{
    Mithril m(1, smallParams());
    std::vector<RowId> arr;
    for (int i = 0; i < 10; ++i)
        m.onActivate(0, 42, 0, arr);
    m.onActivate(0, 7, 0, arr);

    std::vector<RowId> selected;
    m.onRfm(0, 0, selected);
    ASSERT_EQ(selected.size(), 1u);
    EXPECT_EQ(selected[0], 42u);
    // The counter was lowered to the minimum: next RFM picks another.
    selected.clear();
    m.onRfm(0, 0, selected);
    ASSERT_EQ(selected.size(), 1u);
    EXPECT_NE(selected[0], 42u);
}

TEST(Mithril, RfmOnUntouchedBankSelectsNothing)
{
    Mithril m(2, smallParams());
    std::vector<RowId> selected;
    m.onRfm(1, 0, selected);
    EXPECT_TRUE(selected.empty());
}

TEST(Mithril, BanksAreIndependent)
{
    Mithril m(2, smallParams());
    std::vector<RowId> arr;
    for (int i = 0; i < 5; ++i)
        m.onActivate(0, 100, 0, arr);
    for (int i = 0; i < 9; ++i)
        m.onActivate(1, 200, 0, arr);

    std::vector<RowId> sel0, sel1;
    m.onRfm(0, 0, sel0);
    m.onRfm(1, 0, sel1);
    ASSERT_EQ(sel0.size(), 1u);
    ASSERT_EQ(sel1.size(), 1u);
    EXPECT_EQ(sel0[0], 100u);
    EXPECT_EQ(sel1[0], 200u);
}

TEST(Mithril, AdaptiveSkipsUniformPattern)
{
    MithrilParams p = smallParams();
    p.adTh = 50;
    Mithril m(1, p);
    std::vector<RowId> arr;
    // Perfectly uniform: spread stays ~1, well below AdTH.
    for (int i = 0; i < 400; ++i)
        m.onActivate(0, static_cast<RowId>(i % 8), 0, arr);

    std::vector<RowId> selected;
    m.onRfm(0, 0, selected);
    EXPECT_TRUE(selected.empty());
    EXPECT_EQ(m.adaptiveSkips(), 1u);
}

TEST(Mithril, AdaptiveFiresOnConcentratedPattern)
{
    MithrilParams p = smallParams();
    p.adTh = 50;
    Mithril m(1, p);
    std::vector<RowId> arr;
    for (int i = 0; i < 200; ++i)
        m.onActivate(0, 9, 0, arr);  // One row: spread 200 > 50.

    std::vector<RowId> selected;
    m.onRfm(0, 0, selected);
    ASSERT_EQ(selected.size(), 1u);
    EXPECT_EQ(selected[0], 9u);
    EXPECT_EQ(m.adaptiveSkips(), 0u);
}

TEST(Mithril, PlusModeFlagTracksSpread)
{
    MithrilParams p = smallParams();
    p.adTh = 50;
    p.plusMode = true;
    Mithril m(1, p);
    std::vector<RowId> arr;

    for (int i = 0; i < 40; ++i)
        m.onActivate(0, static_cast<RowId>(i % 8), 0, arr);
    EXPECT_FALSE(m.rfmPending(0));  // Uniform: skip the RFM entirely.

    for (int i = 0; i < 200; ++i)
        m.onActivate(0, 3, 0, arr);
    EXPECT_TRUE(m.rfmPending(0));   // Hot row: RFM needed.
}

TEST(Mithril, NonPlusAlwaysReportsPending)
{
    MithrilParams p = smallParams();
    p.adTh = 50;
    p.plusMode = false;
    Mithril m(1, p);
    EXPECT_TRUE(m.rfmPending(0));
}

TEST(Mithril, LogicOpsAccumulate)
{
    Mithril m(1, smallParams());
    std::vector<RowId> arr;
    for (int i = 0; i < 10; ++i)
        m.onActivate(0, 1, 0, arr);
    std::vector<RowId> sel;
    m.onRfm(0, 0, sel);
    EXPECT_EQ(m.logicOps(), 11u);
}

/**
 * Empirical Theorem 1 check: for a solver-produced configuration, the
 * growth of any row's estimated count within one tREFW never exceeds
 * M — equivalently, with M < FlipTH/2, the ground-truth oracle sees no
 * victim reach FlipTH under any of a battery of attack streams.
 */
class MithrilSafety
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, int>>
{
  protected:
    static constexpr int kAttackPatterns = 4;

    static RowId
    attackRow(int pattern, std::uint64_t i, Rng &rng,
              std::uint32_t rfm_th)
    {
        switch (pattern) {
          case 0:  // Double-sided pair.
            return 1000 + 2 * static_cast<RowId>(i % 2);
          case 1:  // Multi-sided block (32 victims).
            return 1000 + 2 * static_cast<RowId>(i % 33);
          case 2:  // Rotating distinct rows, one ACT each (the PARFM /
                   // concentration worst case).
            return 1000 +
                   2 * static_cast<RowId>(i % (4ull * rfm_th));
          default: // Random spray over a hot region.
            return 1000 + static_cast<RowId>(rng.nextBounded(512));
        }
    }
};

TEST_P(MithrilSafety, NoBitFlipsAtSolverConfig)
{
    const auto [flip_th, rfm_th, pattern] = GetParam();
    dram::Timing timing = dram::ddr5_4800();
    ConfigSolver solver(timing, dram::paperGeometry());
    const auto cfg = solver.solve(flip_th, rfm_th);
    ASSERT_TRUE(cfg.has_value());

    MithrilParams params;
    params.nEntry = cfg->nEntry;
    params.rfmTh = rfm_th;
    params.adTh = 0;
    Mithril tracker(1, params);

    sim::ActHarnessConfig hcfg;
    hcfg.timing = timing;
    hcfg.flipTh = flip_th;
    sim::ActHarness harness(hcfg, &tracker);

    // Run for ~1.5 refresh windows at the maximum ACT rate.
    const std::uint64_t acts =
        dram::maxActsPerWindow(timing) * 3 / 2;
    Rng rng(flip_th + rfm_th + static_cast<unsigned>(pattern));
    harness.run(acts, [&](std::uint64_t i) {
        return attackRow(pattern, i, rng, rfm_th);
    });

    EXPECT_EQ(harness.oracle().bitFlips(), 0u)
        << "FlipTH=" << flip_th << " RFM_TH=" << rfm_th
        << " pattern=" << pattern << " maxDist="
        << harness.oracle().maxDisturbanceEver();
    EXPECT_LT(harness.oracle().maxDisturbanceEver(), flip_th);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MithrilSafety,
    ::testing::Combine(::testing::Values(3125u, 6250u, 12500u),
                       ::testing::Values(32u, 64u, 128u),
                       ::testing::Values(0, 1, 2, 3)));

TEST(MithrilSafetyAdaptive, AdaptiveConfigStillSafe)
{
    // Theorem 2: the adaptive-refresh configuration (sized with AdTH)
    // is still deterministically safe under a hot double-sided attack.
    dram::Timing timing = dram::ddr5_4800();
    ConfigSolver solver(timing, dram::paperGeometry());
    const std::uint32_t flip_th = 6250, rfm_th = 64, ad_th = 200;
    const auto cfg = solver.solve(flip_th, rfm_th, ad_th);
    ASSERT_TRUE(cfg.has_value());

    MithrilParams params;
    params.nEntry = cfg->nEntry;
    params.rfmTh = rfm_th;
    params.adTh = ad_th;
    Mithril tracker(1, params);

    sim::ActHarnessConfig hcfg;
    hcfg.timing = timing;
    hcfg.flipTh = flip_th;
    sim::ActHarness harness(hcfg, &tracker);
    harness.run(dram::maxActsPerWindow(timing) * 3 / 2,
                [](std::uint64_t i) {
                    return 1000 + 2 * static_cast<RowId>(i % 2);
                });
    EXPECT_EQ(harness.oracle().bitFlips(), 0u);
}

TEST(MithrilSafetyAdaptive, AdaptiveSkipsOnBenignStream)
{
    // A benign uniform sweep (the Figure 8 pattern at row granularity)
    // must be filtered almost entirely by AdTH=200.
    dram::Timing timing = dram::ddr5_4800();
    MithrilParams params;
    params.nEntry = 512;
    params.rfmTh = 64;
    params.adTh = 200;
    Mithril tracker(1, params);

    sim::ActHarnessConfig hcfg;
    hcfg.timing = timing;
    hcfg.flipTh = 6250;
    sim::ActHarness harness(hcfg, &tracker);
    // Sweep rows with ~128 ACT reuse spread widely (benign).
    harness.run(500000, [](std::uint64_t i) {
        return static_cast<RowId>((i / 2) % 40000);
    });
    EXPECT_GT(harness.rfms(), 0u);
    // Nearly every RFM skipped the preventive refresh.
    EXPECT_LT(harness.preventiveRefreshes(), harness.rfms() / 20);
    EXPECT_EQ(harness.oracle().bitFlips(), 0u);
}

TEST(MithrilEstimatedGrowth, BoundedByTheorem1M)
{
    // Directly check the quantity Theorem 1 bounds: the growth of the
    // estimated count of any single row across one tREFW window.
    dram::Timing timing = dram::ddr5_4800();
    const std::uint32_t n_entry = 64, rfm_th = 32;
    const double m = theorem1Bound(timing, n_entry, rfm_th);

    MithrilParams params;
    params.nEntry = n_entry;
    params.rfmTh = rfm_th;
    Mithril tracker(1, params);

    sim::ActHarnessConfig hcfg;
    hcfg.timing = timing;
    hcfg.flipTh = 1u << 30;  // Oracle disabled-ish; we check counters.
    sim::ActHarness harness(hcfg, &tracker);

    // Adversarial: hammer one row plus rotating chaff.
    const RowId target = 5000;
    std::uint64_t window_acts = dram::maxActsPerWindow(timing);
    const std::uint64_t start_est = tracker.table(0).estimate(target);
    harness.run(window_acts, [&](std::uint64_t i) {
        if (i % 3 == 0)
            return target;
        return static_cast<RowId>(6000 + 2 * (i % 100));
    });
    const std::uint64_t end_est = tracker.table(0).estimate(target);
    EXPECT_LE(static_cast<double>(end_est - start_est), m)
        << "estimated growth exceeded Theorem 1 bound M=" << m;
}

} // namespace
} // namespace mithril::core
