/**
 * @file
 * Multi-channel System frontend tests: the cross-channel writeback
 * conservation law (the silent-drop regression), byte-identical runs
 * across mc-thread counts, and full-channel coverage of the ACT
 * capture tap.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/mithril.hh"
#include "mc/address_map.hh"
#include "sim/system.hh"
#include "sim/workload_suite.hh"
#include "workload/trace.hh"

namespace mithril::sim
{
namespace
{

/** Replays a fixed list of records, then ends. */
class ScriptGen : public workload::TraceGenerator
{
  public:
    explicit ScriptGen(std::vector<workload::TraceRecord> records)
        : records_(std::move(records))
    {
    }

    std::optional<workload::TraceRecord>
    next() override
    {
        if (pos_ >= records_.size())
            return std::nullopt;
        return records_[pos_++];
    }

    std::string name() const override { return "script"; }

  private:
    std::vector<workload::TraceRecord> records_;
    std::size_t pos_ = 0;
};

/**
 * Endless uncached reads pinned to one bank of channel 0, alternating
 * rows so every request pays a full row cycle: the slowest-draining
 * stream a single bank can serve, which keeps the channel-0 queue at
 * capacity for the whole run.
 */
class ChannelFloodGen : public workload::TraceGenerator
{
  public:
    explicit ChannelFloodGen(const mc::AddressMap &map) : map_(map) {}

    std::optional<workload::TraceRecord>
    next() override
    {
        workload::TraceRecord rec;
        rec.gap = 1;
        rec.uncached = true;
        rec.write = false;
        rec.addr = map_.compose(0, 0, 3, 100 + 50 * (count_++ % 2), 0);
        return rec;
    }

    std::string name() const override { return "channel-flood"; }

  private:
    const mc::AddressMap &map_;
    std::uint64_t count_ = 0;
};

// ------------------------------------ cross-channel writeback drop

TEST(MultiChannel, WritebackConservationUnderVictimChannelPressure)
{
    // The regression this pins: a read miss whose fill decodes to
    // channel 1 but whose dirty victim's writeback decodes to channel 0
    // used to probe only the fill channel for queue space. With channel
    // 0 full, the fill was accepted and the writeback silently dropped
    // — dirty data vanished. The fix reserves a slot in the writeback's
    // own channel before the cache commits the eviction, so the law
    //   cache writebacks == memory-controller writes
    // holds exactly (every write the MC sees here *is* a writeback:
    // all demand traffic below is reads).
    SystemConfig cfg;
    ASSERT_EQ(cfg.geometry.channels, 2u);
    // Cache lines (128B) wider than the 64B channel interleave: a
    // line's fill address (offset +64 -> channel 1) and its victim's
    // writeback address (line-aligned -> channel 0) decode to
    // *different* channels.
    cfg.cacheParams.sizeBytes = 16ull << 10;
    cfg.cacheParams.ways = 2;
    cfg.cacheParams.lineBytes = 128;
    cfg.mcParams.queueCapacity = 4;
    mc::AddressMap map(cfg.geometry);

    System system(cfg, nullptr);

    // Benign core: read-miss then write-hit per line. The read fills
    // (channel 1), the write dirties in place; once the cache is full
    // every further read miss evicts a dirty line whose writeback
    // targets flooded channel 0.
    std::vector<workload::TraceRecord> script;
    for (std::uint64_t i = 0; i < 1024; ++i) {
        const Addr addr = 128 * i + 64;
        script.push_back({1, addr, false, false});
        script.push_back({1, addr, true, false});
    }
    cpu::CoreParams benign;
    system.addCore(benign, std::make_unique<ScriptGen>(script));

    // Attacker core: keeps the victim channel's queue at capacity with
    // a tight retry loop (window drains one slot per ~tRC; the 7ns
    // retry refills it almost immediately).
    cpu::CoreParams flood;
    flood.excluded = true;
    flood.retryInterval = nsToTick(7.0);
    system.addCore(flood, std::make_unique<ChannelFloodGen>(map));

    system.run();

    // Drain what is still queued (untracked writebacks do not gate
    // benignDone) so the controller write counters are final.
    for (std::uint32_t ch = 0; ch < system.channels(); ++ch) {
        mc::Controller &ctrl = system.controller(ch);
        Tick now = system.now();
        while (!ctrl.idle())
            now = ctrl.service(now);
    }

    // The run must actually have exercised the contended path.
    EXPECT_GT(system.cache().writebacks(), 500u);
    EXPECT_GT(system.controller(0).stats().reads, 100u);

    // Conservation: every dirty eviction the cache performed reached a
    // memory controller. A silent cross-channel drop breaks this.
    EXPECT_EQ(system.stats().writes, system.cache().writebacks());
}

// -------------------------------------- determinism across threads

struct RunArtifacts
{
    std::vector<std::tuple<BankId, RowId, Tick>> acts;
    std::string statsDump;
    double aggIpc = 0.0;
    Tick end = 0;
};

RunArtifacts
runMixOnce(std::uint32_t mc_threads)
{
    SystemConfig cfg;
    cfg.mcThreads = mc_threads;
    core::MithrilParams mp;
    mp.nEntry = 64;
    System system(cfg, [&] {
        return std::make_unique<core::Mithril>(
            cfg.geometry.totalBanks(), mp);
    });

    RunArtifacts out;
    system.setActObserver([&](BankId b, RowId r, Tick t) {
        out.acts.emplace_back(b, r, t);
    });

    for (std::uint32_t i = 0; i < 4; ++i) {
        cpu::CoreParams params;
        params.instrBudget = 20000;
        system.addCore(params, makeWorkloadThread(WorkloadKind::MixHigh,
                                                  i, 4, 1));
    }
    system.run();

    StatRegistry registry;
    system.exportStats(registry);
    out.statsDump = registry.dump();
    out.aggIpc = system.aggregateIpc();
    out.end = system.now();
    return out;
}

TEST(MultiChannel, ByteIdenticalAcrossMcThreads)
{
    // The tentpole's determinism contract: a 2-channel run must be
    // byte-identical whether the lanes are serviced inline or on a
    // 4-worker pool — same ACT stream (order included), same stats
    // dump, same IPC, same final tick.
    const RunArtifacts serial = runMixOnce(1);
    const RunArtifacts threaded = runMixOnce(4);

    EXPECT_GT(serial.acts.size(), 100u);
    EXPECT_EQ(serial.acts, threaded.acts);
    EXPECT_EQ(serial.statsDump, threaded.statsDump);
    EXPECT_DOUBLE_EQ(serial.aggIpc, threaded.aggIpc);
    EXPECT_EQ(serial.end, threaded.end);
}

// ------------------------------------------- capture tap coverage

TEST(MultiChannel, CapturedActsCoverEveryChannel)
{
    // record= capture taps the merged observer: the stream must carry
    // ACTs from every channel's banks, with per-bank ticks monotone
    // (the act-trace format's ordering requirement).
    const RunArtifacts run = runMixOnce(1);
    const dram::Geometry geom = SystemConfig{}.geometry;
    const std::uint32_t banks_per_channel =
        geom.ranksPerChannel * geom.banksPerRank;

    std::vector<std::uint64_t> per_channel(geom.channels, 0);
    std::map<BankId, Tick> last_tick;
    for (const auto &[bank, row, tick] : run.acts) {
        ASSERT_LT(bank, geom.totalBanks());
        ++per_channel[bank / banks_per_channel];
        auto [it, fresh] = last_tick.try_emplace(bank, tick);
        if (!fresh) {
            EXPECT_GE(tick, it->second);
            it->second = tick;
        }
    }
    ASSERT_EQ(per_channel.size(), 2u);
    for (std::uint32_t ch = 0; ch < geom.channels; ++ch)
        EXPECT_GT(per_channel[ch], 0u) << "channel " << ch;
}

} // namespace
} // namespace mithril::sim
