/**
 * @file
 * Non-adjacent Row Hammer (Section V-C): with a disturbance radius of
 * 2-3, distance-2+ aggressors contribute fractional disturbance, the
 * aggregated effect rises to 2.5/3.5, the safety condition tightens to
 * M < FlipTH/effect, and preventive refreshes must cover 2*radius
 * victims. These tests validate the whole chain: bound math, solver
 * sizing, factory plumbing, oracle accounting, and end-to-end safety
 * under half-double style attacks.
 */

#include <gtest/gtest.h>

#include "core/bounds.hh"
#include "core/config_solver.hh"
#include "registry/scheme_registry.hh"
#include "sim/act_harness.hh"

namespace mithril
{
namespace
{

TEST(NonAdjacent, AggregatedEffectValues)
{
    EXPECT_DOUBLE_EQ(core::aggregatedEffect(1), 2.0);
    EXPECT_DOUBLE_EQ(core::aggregatedEffect(2), 2.5);
    EXPECT_DOUBLE_EQ(core::aggregatedEffect(3), 3.5);
}

TEST(NonAdjacent, TighterEffectNeedsMoreEntries)
{
    const dram::Timing timing = dram::ddr5_4800();
    core::ConfigSolver solver(timing, dram::paperGeometry());
    const std::uint64_t n1 = solver.minEntries(6250, 64, 0, 2.0);
    const std::uint64_t n3 = solver.minEntries(6250, 64, 0, 3.5);
    ASSERT_GT(n1, 0u);
    ASSERT_GT(n3, 0u);
    EXPECT_GT(n3, n1);
}

TEST(NonAdjacent, FactorySizesForRadius)
{
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();

    registry::SchemeKnobs near;
    near.flipTh = 6250;
    near.adTh = 0;
    near.blastRadius = 1;
    auto t1 = registry::makeScheme("mithril", near.toParams(),
                                   {timing, geom});

    registry::SchemeKnobs far = near;
    far.blastRadius = 3;
    auto t3 = registry::makeScheme("mithril", far.toParams(),
                                   {timing, geom});

    EXPECT_GT(t3->tableBytesPerBank(), t1->tableBytesPerBank());
}

TEST(NonAdjacent, OracleWeightsByDistance)
{
    dram::RhOracle oracle(1, 4096, 1000, 3);
    oracle.onActivate(0, 100);
    EXPECT_DOUBLE_EQ(oracle.disturbance(0, 99), 1.0);
    EXPECT_DOUBLE_EQ(oracle.disturbance(0, 98), 0.25);
    EXPECT_DOUBLE_EQ(oracle.disturbance(0, 97), 0.25);
    EXPECT_DOUBLE_EQ(oracle.disturbance(0, 96), 0.0);
}

TEST(NonAdjacent, SandwichedVictimAccumulatesFromAllSides)
{
    // Aggressors at distance 1 and 2 on both sides of row 100.
    dram::RhOracle oracle(1, 4096, 1000, 2);
    oracle.onActivate(0, 99);
    oracle.onActivate(0, 101);
    oracle.onActivate(0, 98);
    oracle.onActivate(0, 102);
    // 2 * 1.0 + 2 * 0.25 per round.
    EXPECT_DOUBLE_EQ(oracle.disturbance(0, 100), 2.5);
}

TEST(NonAdjacent, PreventiveRefreshCoversWiderVictims)
{
    dram::RhOracle oracle(1, 4096, 1000, 3);
    for (int i = 0; i < 10; ++i)
        oracle.onActivate(0, 100);
    oracle.onNeighborRefresh(0, 100);
    for (RowId r = 97; r <= 103; ++r)
        EXPECT_DOUBLE_EQ(oracle.disturbance(0, r), 0.0) << r;
}

/** Half-double style attack: hammer a sandwich of rows around the
 *  victim so distance-2 coupling matters. */
RowId
halfDoubleRow(std::uint64_t i)
{
    // Aggressors at 1000, 1001, 1003, 1004 — victim 1002 takes two
    // distance-1 and two distance-2 hits per round.
    static const RowId rows[] = {1000, 1001, 1003, 1004};
    return rows[i % 4];
}

TEST(NonAdjacent, UnprotectedHalfDoubleFlips)
{
    sim::ActHarnessConfig cfg;
    cfg.timing = dram::ddr5_4800();
    cfg.flipTh = 5000;
    cfg.blastRadius = 2;
    sim::ActHarness harness(cfg, nullptr);
    harness.run(30000, halfDoubleRow);
    EXPECT_GT(harness.oracle().bitFlips(), 0u);
}

class NonAdjacentSafety
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(NonAdjacentSafety, MithrilConfiguredForRadiusSurvives)
{
    const std::uint32_t radius = GetParam();
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();

    registry::SchemeKnobs knobs;
    knobs.flipTh = 6250;
    knobs.adTh = 0;
    knobs.blastRadius = radius;
    auto tracker = registry::makeScheme("mithril", knobs.toParams(),
                                        {timing, geom});

    sim::ActHarnessConfig cfg;
    cfg.timing = timing;
    cfg.flipTh = 6250;
    cfg.blastRadius = radius;
    sim::ActHarness harness(cfg, tracker.get());
    harness.run(dram::maxActsPerWindow(timing) * 3 / 2,
                halfDoubleRow);
    EXPECT_EQ(harness.oracle().bitFlips(), 0u)
        << "radius " << radius << " max disturbance "
        << harness.oracle().maxDisturbanceEver();
}

INSTANTIATE_TEST_SUITE_P(Radii, NonAdjacentSafety,
                         ::testing::Values(1u, 2u, 3u));

TEST(NonAdjacent, SafetyMarginShrinksWithoutRadiusAwareness)
{
    // A radius-1 configuration measured against a radius-3 oracle has
    // strictly less margin than the radius-3 configuration — the
    // quantitative reason Section V-C exists.
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();

    auto run_with = [&](std::uint32_t config_radius) {
        registry::SchemeKnobs knobs;
        knobs.flipTh = 6250;
        knobs.adTh = 0;
        knobs.blastRadius = config_radius;
        auto tracker = registry::makeScheme(
            "mithril", knobs.toParams(), {timing, geom});

        sim::ActHarnessConfig cfg;
        cfg.timing = timing;
        cfg.flipTh = 6250;
        cfg.blastRadius = 3;  // Ground truth: wide coupling.
        sim::ActHarness harness(cfg, tracker.get());
        harness.run(dram::maxActsPerWindow(timing), halfDoubleRow);
        return harness.oracle().maxDisturbanceEver();
    };

    const double with_awareness = run_with(3);
    const double without = run_with(1);
    EXPECT_LT(with_awareness, 6250.0);
    EXPECT_GE(without, with_awareness);
}

} // namespace
} // namespace mithril
