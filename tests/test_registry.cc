/**
 * @file
 * Tests for the registry subsystem and the unified ExperimentSpec:
 * duplicate-name registration is a hard error, unknown-name lookups
 * list every registered candidate, entry parameters range-check,
 * ExperimentSpec::describe() round-trips through ParamSet, and a
 * golden file pins the `sweep_cli --list` output.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/config.hh"
#include "common/logging.hh"
#include "registry/attack_registry.hh"
#include "registry/listing.hh"
#include "registry/registry.hh"
#include "registry/scheme_registry.hh"
#include "registry/workload_registry.hh"
#include "sim/experiment.hh"

namespace mithril
{
namespace
{

using registry::SpecError;

// ------------------------------------------------- generic registry

/** A private product/traits pair so these tests get registries that
 *  are isolated from the real scheme/workload/attack singletons. */
struct Widget
{
    int value = 0;
};

struct WidgetContext
{
    int scale = 1;
};

struct WidgetTraits
{
    using Product = Widget;
    using Context = WidgetContext;
    static constexpr const char *kCategory = "widget";
    static constexpr const char *kPlural = "widgets";
};

typename registry::Registry<WidgetTraits>::Entry
widgetEntry(const std::string &name, int value)
{
    typename registry::Registry<WidgetTraits>::Entry entry;
    entry.name = name;
    entry.display = name;
    entry.description = "a widget";
    entry.make = [value](const ParamSet &, const WidgetContext &ctx) {
        auto w = std::make_unique<Widget>();
        w->value = value * ctx.scale;
        return w;
    };
    return entry;
}

TEST(Registry, RegisterLookupAndMake)
{
    registry::Registry<WidgetTraits> reg;
    reg.add(widgetEntry("alpha", 3));
    reg.add(widgetEntry("beta", 5));

    EXPECT_TRUE(reg.has("alpha"));
    EXPECT_FALSE(reg.has("gamma"));
    EXPECT_EQ(reg.names(), (std::vector<std::string>{"alpha", "beta"}));

    auto w = reg.at("beta").make(ParamSet(), {10});
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->value, 50);
}

TEST(Registry, AliasesResolveToCanonicalEntry)
{
    registry::Registry<WidgetTraits> reg;
    auto entry = widgetEntry("alpha", 1);
    entry.aliases = {"alfa"};
    reg.add(entry);
    ASSERT_NE(reg.find("alfa"), nullptr);
    EXPECT_EQ(reg.find("alfa")->name, "alpha");
    // Aliases are not separate names.
    EXPECT_EQ(reg.names(), (std::vector<std::string>{"alpha"}));
}

TEST(Registry, DuplicateRegistrationIsAHardError)
{
    setLogThrowOnFatal(true);
    registry::Registry<WidgetTraits> reg;
    reg.add(widgetEntry("alpha", 1));
    EXPECT_THROW(reg.add(widgetEntry("alpha", 2)),
                 std::runtime_error);
    // An alias clashing with an existing name is equally fatal.
    auto entry = widgetEntry("beta", 1);
    entry.aliases = {"alpha"};
    EXPECT_THROW(reg.add(entry), std::runtime_error);
    setLogThrowOnFatal(false);
}

TEST(Registry, UnknownLookupListsEveryCandidate)
{
    registry::Registry<WidgetTraits> reg;
    reg.add(widgetEntry("alpha", 1));
    reg.add(widgetEntry("beta", 2));
    try {
        reg.at("gamma");
        FAIL() << "expected SpecError";
    } catch (const SpecError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("unknown widget 'gamma'"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("alpha, beta"), std::string::npos)
            << what;
    }
}

// ------------------------------------------------ built-in entries

TEST(BuiltinRegistries, AllPaperEntriesAreRegistered)
{
    EXPECT_EQ(registry::schemeRegistry().names(),
              (std::vector<std::string>{
                  "blockhammer", "cbt", "graphene", "mithril",
                  "mithril+", "none", "para", "parfm",
                  "rfm-graphene", "twice"}));
    EXPECT_EQ(registry::workloadRegistry().names(),
              (std::vector<std::string>{
                  "gups", "mix-blend", "mix-high", "mt-fft",
                  "mt-pagerank", "mt-radix", "stencil"}));
    EXPECT_EQ(registry::attackRegistry().names(),
              (std::vector<std::string>{
                  "cbf-pollution", "double-sided", "multi-sided",
                  "none", "rfm-optimal"}));
}

TEST(BuiltinRegistries, UnknownSchemeListsCandidates)
{
    try {
        registry::schemeRegistry().at("mithril2");
        FAIL() << "expected SpecError";
    } catch (const SpecError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("registered schemes"), std::string::npos);
        EXPECT_NE(what.find("blockhammer"), std::string::npos);
        EXPECT_NE(what.find("twice"), std::string::npos);
    }
}

TEST(BuiltinRegistries, SchemeFactoriesHonourTheirKnobs)
{
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    ParamSet params;
    params.set("flip", "6250");
    for (const std::string &name :
         registry::schemeRegistry().names()) {
        auto tracker =
            registry::makeScheme(name, params, {timing, geom});
        if (name == "none")
            EXPECT_EQ(tracker, nullptr);
        else
            ASSERT_NE(tracker, nullptr) << name;
    }
}

TEST(BuiltinRegistries, InfeasibleConfigurationThrowsSpecError)
{
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    ParamSet params;
    params.set("flip", "100");
    EXPECT_THROW(
        registry::makeScheme("mithril", params, {timing, geom}),
        SpecError);
}

// ---------------------------------------------------- ExperimentSpec

TEST(ExperimentSpec, DescribeRoundTripsThroughParamSet)
{
    ParamSet params = ParamSet::fromString(
        "scheme=blockhammer workload=gups attack=multi-sided "
        "victims=16 flip=3125 cores=4 instr=5000 seed=9");
    const sim::ExperimentSpec spec =
        sim::ExperimentSpec::parse(params);
    const std::string described = spec.describe();

    const sim::ExperimentSpec again = sim::ExperimentSpec::parse(
        ParamSet::fromString(described));
    EXPECT_EQ(again.describe(), described);
    EXPECT_EQ(again.scheme, "blockhammer");
    EXPECT_EQ(again.workload, "gups");
    EXPECT_EQ(again.attack, "multi-sided");
    EXPECT_EQ(again.flipTh, 3125u);
    EXPECT_EQ(again.extras.getString("victims"), "16");

    // Defaults round-trip too.
    const sim::ExperimentSpec defaults;
    EXPECT_EQ(sim::ExperimentSpec::parse(
                  ParamSet::fromString(defaults.describe()))
                  .describe(),
              defaults.describe());
}

TEST(ExperimentSpec, CanonicalizesAliases)
{
    const sim::ExperimentSpec spec = sim::ExperimentSpec::parse(
        ParamSet::fromString("scheme=mithril_plus "
                             "attack=double_sided cores=2"));
    EXPECT_EQ(spec.scheme, "mithril+");
    EXPECT_EQ(spec.attack, "double-sided");
}

TEST(ExperimentSpec, UnknownNamesListCandidates)
{
    try {
        sim::ExperimentSpec::parse(
            ParamSet::fromString("scheme=graphene2"));
        FAIL() << "expected SpecError";
    } catch (const SpecError &err) {
        EXPECT_NE(std::string(err.what()).find("registered schemes"),
                  std::string::npos)
            << err.what();
    }
    try {
        sim::ExperimentSpec::parse(
            ParamSet::fromString("workload=mix-hihg"));
        FAIL() << "expected SpecError";
    } catch (const SpecError &err) {
        EXPECT_NE(std::string(err.what()).find("mix-high"),
                  std::string::npos)
            << err.what();
    }
}

TEST(ExperimentSpec, RangeErrorsNameTheLegalRange)
{
    try {
        sim::ExperimentSpec::parse(ParamSet::fromString("flip=0"));
        FAIL() << "expected SpecError";
    } catch (const SpecError &err) {
        EXPECT_NE(std::string(err.what()).find("[1, 10000000]"),
                  std::string::npos)
            << err.what();
    }
    // Entry-declared parameters range-check too.
    try {
        sim::ExperimentSpec::parse(ParamSet::fromString(
            "attack=multi-sided victims=5000 cores=2"));
        FAIL() << "expected SpecError";
    } catch (const SpecError &err) {
        EXPECT_NE(std::string(err.what()).find("[1, 1024]"),
                  std::string::npos)
            << err.what();
    }
}

TEST(ExperimentSpec, RejectsUndeclaredParameters)
{
    try {
        sim::ExperimentSpec::parse(
            ParamSet::fromString("victims=8"));  // attack=none
        FAIL() << "expected SpecError";
    } catch (const SpecError &err) {
        EXPECT_NE(std::string(err.what())
                      .find("unknown experiment parameter"),
                  std::string::npos)
            << err.what();
    }
    // The same key is accepted once the owning entry is selected.
    EXPECT_NO_THROW(sim::ExperimentSpec::parse(ParamSet::fromString(
        "attack=multi-sided victims=8 cores=2")));
}

TEST(ExperimentSpec, AttackNeedsTwoCores)
{
    EXPECT_THROW(sim::ExperimentSpec::parse(ParamSet::fromString(
                     "attack=double-sided cores=1")),
                 SpecError);
}

// ------------------------------------------------------ golden list

TEST(Listing, GoldenFilePinsSweepCliListOutput)
{
    // The same rendering sweep_cli --list prints. Regenerate with:
    //   MITHRIL_UPDATE_GOLDEN=1 ./test_registry
    //       --gtest_filter=Listing.GoldenFilePinsSweepCliListOutput
    const std::string artifact = registry::renderRegistries("all");

    const std::string golden_path =
        std::string(MITHRIL_SOURCE_DIR) + "/tests/golden/list_v1.txt";
    if (std::getenv("MITHRIL_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(golden_path);
        out << artifact;
        GTEST_SKIP() << "regenerated " << golden_path;
    }
    std::ifstream in(golden_path);
    ASSERT_TRUE(in) << "missing golden file " << golden_path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(artifact, buffer.str());
}

TEST(Listing, UnknownCategoryThrows)
{
    EXPECT_THROW(registry::renderRegistries("gadgets"), SpecError);
}

} // namespace
} // namespace mithril
