/**
 * @file
 * Tests for the resilience layer: the failpoint fault-injection
 * registry, the crash-safe checkpoint journal and byte-identical
 * resume, the per-job watchdog and deterministic retries, strict
 * (fail-fast) mode, and catch-all exception containment in the sweep
 * runner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/failpoint.hh"
#include "common/logging.hh"
#include "registry/registry.hh"
#include "runner/journal.hh"
#include "runner/runner.hh"
#include "runner/sinks.hh"
#include "runner/sweep_spec.hh"

namespace mithril::runner
{
namespace
{

/** A test-owned failpoint site, so arming/firing needs no real I/O
 *  path. Registered exactly like production sites. */
const failpoint::SiteRegistrar kTestSite{
    "test.resilience-site",
    "test-only site exercised by test_resilience"};

/** RAII temp file path (removed on destruction). */
struct TempPath
{
    std::string path;

    explicit TempPath(const std::string &name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::remove(path.c_str());
    }
    ~TempPath() { std::remove(path.c_str()); }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

/** Deterministic stand-in for sim::runExperiment with awkward
 *  doubles (never exactly representable) so the journal's exact
 *  round-trip is actually exercised. */
sim::RunMetrics
stubMetrics(const Job &job)
{
    sim::RunMetrics m;
    const double salt = static_cast<double>(job.index + 1);
    m.aggIpc = 1.0 / (3.0 * salt);
    m.energyPj = 10000.0 / 7.0 + salt;
    m.avgReadLatencyNs = 0.1 * salt;
    m.p95ReadLatencyNs = 0.3 * salt;
    m.maxDisturbance = 1.0 / 81.0;
    m.trackerBytesPerBank = salt / 1024.0;
    m.simTicks = static_cast<Tick>(1000 * (job.index + 1));
    m.acts = job.spec.flipTh + job.index;
    m.reads = 17 * (job.index + 1);
    m.rfmIssued = job.index;
    m.bitFlips = job.index % 2;
    m.telemetry["engine.acts"] = static_cast<double>(m.acts);
    m.telemetry["odd name = tricky"] = 1.0 / 3.0;
    return m;
}

/** The stub's failure hooks, keyed by job index. JobFn is a plain
 *  function pointer, so the hooks are file-scope state reset by each
 *  test that uses them. */
std::atomic<long> g_throwStdOnIndex{-1};
std::atomic<long> g_hangMsOnIndex{-1};
std::atomic<long> g_hangMs{2000};
std::atomic<long> g_failFirstAttemptsOnIndex{-1};
std::atomic<unsigned> g_attemptsSeen{0};
std::atomic<unsigned> g_failFirstN{1};

void
resetHooks()
{
    g_throwStdOnIndex = -1;
    g_hangMsOnIndex = -1;
    g_hangMs = 2000;
    g_failFirstAttemptsOnIndex = -1;
    g_attemptsSeen = 0;
    g_failFirstN = 1;
}

sim::RunMetrics
hookedStub(const Job &job)
{
    const long index = static_cast<long>(job.index);
    if (g_throwStdOnIndex.load() == index)
        throw std::runtime_error("stub blew up (not a SpecError)");
    if (g_hangMsOnIndex.load() == index) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(g_hangMs.load()));
    }
    if (g_failFirstAttemptsOnIndex.load() == index &&
        g_attemptsSeen.fetch_add(1) < g_failFirstN.load()) {
        throw registry::SpecError("transient stub failure");
    }
    // A failpoint in the job body proper, for the failpoints= knob
    // test — exactly how act-trace.decode sits inside loadBlock.
    MITHRIL_FAILPOINT("test.resilience-site");
    return stubMetrics(job);
}

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.schemes = {"mithril", "para", "graphene"};
    spec.flipThs = {50000, 6250};
    spec.cases = {{"mix-high", "none"}};
    spec.includeBaseline = true;
    return spec;
}

RunnerOptions
quietOptions(unsigned jobs = 2)
{
    RunnerOptions options;
    options.jobs = jobs;
    options.progress = false;
    return options;
}

// ------------------------------------------------------- failpoints

TEST(Failpoint, DisarmedSiteIsInvisible)
{
    failpoint::disarmAll();
    EXPECT_FALSE(failpoint::anyArmed());
    EXPECT_NO_THROW(failpoint::evaluate("test.resilience-site"));
    EXPECT_EQ(failpoint::firedCount("test.resilience-site"), 0u);
}

TEST(Failpoint, ArmFireDisarm)
{
    failpoint::armFromSpec("test.resilience-site:error");
    EXPECT_TRUE(failpoint::anyArmed());
    EXPECT_THROW(failpoint::evaluate("test.resilience-site"),
                 registry::SpecError);
    EXPECT_EQ(failpoint::firedCount("test.resilience-site"), 1u);
    failpoint::disarmAll();
    EXPECT_FALSE(failpoint::anyArmed());
    EXPECT_NO_THROW(failpoint::evaluate("test.resilience-site"));
}

TEST(Failpoint, EioActionNamesTheFlavor)
{
    failpoint::armFromSpec("test.resilience-site:eio");
    try {
        failpoint::evaluate("test.resilience-site");
        FAIL() << "expected SpecError";
    } catch (const registry::SpecError &err) {
        EXPECT_NE(std::string(err.what()).find("EIO"),
                  std::string::npos)
            << err.what();
    }
    failpoint::disarmAll();
}

TEST(Failpoint, AfterAndTimesModifiers)
{
    failpoint::armFromSpec(
        "test.resilience-site:error:after=2:times=1");
    // Hits 0 and 1 pass, hit 2 fires, then times=1 is exhausted.
    EXPECT_NO_THROW(failpoint::evaluate("test.resilience-site"));
    EXPECT_NO_THROW(failpoint::evaluate("test.resilience-site"));
    EXPECT_THROW(failpoint::evaluate("test.resilience-site"),
                 registry::SpecError);
    EXPECT_NO_THROW(failpoint::evaluate("test.resilience-site"));
    EXPECT_EQ(failpoint::firedCount("test.resilience-site"), 1u);
    failpoint::disarmAll();
}

TEST(Failpoint, ProbFiresDeterministically)
{
    auto pattern = [] {
        std::vector<bool> fired;
        failpoint::armFromSpec(
            "test.resilience-site:error:prob=0.5:seed=7");
        for (int i = 0; i < 64; ++i) {
            bool threw = false;
            try {
                failpoint::evaluate("test.resilience-site");
            } catch (const registry::SpecError &) {
                threw = true;
            }
            fired.push_back(threw);
        }
        failpoint::disarmAll();
        return fired;
    };
    const std::vector<bool> first = pattern();
    const std::vector<bool> second = pattern();
    EXPECT_EQ(first, second);
    // prob=0.5 over 64 draws: some fire, some pass.
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(Failpoint, StallSleepsForMs)
{
    failpoint::armFromSpec("test.resilience-site:stall:ms=60");
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_NO_THROW(failpoint::evaluate("test.resilience-site"));
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    failpoint::disarmAll();
    EXPECT_GE(ms, 50.0);
}

TEST(Failpoint, UnknownNamesAndGrammarAreSpecErrors)
{
    try {
        failpoint::armFromSpec("no.such.site:error");
        FAIL() << "expected SpecError";
    } catch (const registry::SpecError &err) {
        // The message lists the registered candidates.
        EXPECT_NE(std::string(err.what()).find("act-trace.decode"),
                  std::string::npos)
            << err.what();
    }
    EXPECT_THROW(failpoint::armFromSpec("test.resilience-site"),
                 registry::SpecError); // no action
    EXPECT_THROW(
        failpoint::armFromSpec("test.resilience-site:explode"),
        registry::SpecError); // unknown action
    EXPECT_THROW(
        failpoint::armFromSpec("test.resilience-site:error:prob=2"),
        registry::SpecError); // prob out of range
    EXPECT_THROW(
        failpoint::armFromSpec(
            "test.resilience-site:error:bogus=1"),
        registry::SpecError); // unknown modifier
    EXPECT_FALSE(failpoint::anyArmed());
}

TEST(Failpoint, ProductionSitesAreRegistered)
{
    std::vector<std::string> names;
    for (const failpoint::Site &site : failpoint::sites())
        names.push_back(site.name);
    for (const char *expect :
         {"act-trace.decode", "act-trace.finalize",
          "engine.shard-dispatch", "journal.append", "sink.flush"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expect),
                  names.end())
            << expect;
    }
    // Sorted, so the --list output is deterministic.
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

// ---------------------------------------------------------- journal

TEST(Journal, RoundTripsEveryRecordExactly)
{
    const SweepSpec spec = smallSpec();
    TempPath journal("resilience_roundtrip.journal");

    RunnerOptions options = quietOptions();
    options.journal = journal.path;
    const SweepResult run =
        SweepRunner(options).run(spec, &stubMetrics);
    ASSERT_EQ(run.failedCount(), 0u);

    const std::vector<Job> jobs = spec.expand();
    const auto restored = SweepJournal::load(
        journal.path, sweepFingerprint(jobs), jobs);
    ASSERT_EQ(restored.size(), jobs.size());
    for (const auto &[index, rec] : restored) {
        const sim::RunMetrics &want = run.results[index].metrics;
        EXPECT_TRUE(rec.restored);
        EXPECT_EQ(rec.status, JobStatus::Ok);
        EXPECT_EQ(rec.job.label, jobs[index].label);
        // Doubles restore bit-exactly (%.17g round-trip).
        EXPECT_EQ(rec.metrics.aggIpc, want.aggIpc);
        EXPECT_EQ(rec.metrics.energyPj, want.energyPj);
        EXPECT_EQ(rec.metrics.maxDisturbance, want.maxDisturbance);
        EXPECT_EQ(rec.metrics.trackerBytesPerBank,
                  want.trackerBytesPerBank);
        EXPECT_EQ(rec.metrics.simTicks, want.simTicks);
        EXPECT_EQ(rec.metrics.acts, want.acts);
        EXPECT_EQ(rec.metrics.telemetry, want.telemetry);
    }
}

TEST(Journal, TornTailLineIsIgnored)
{
    const SweepSpec spec = smallSpec();
    TempPath journal("resilience_torn.journal");

    RunnerOptions options = quietOptions();
    options.journal = journal.path;
    SweepRunner(options).run(spec, &stubMetrics);

    std::string content = readFile(journal.path);
    // Cut the final record mid-line, as a SIGKILL mid-append would.
    content.resize(content.size() - 25);
    writeFile(journal.path, content);

    const std::vector<Job> jobs = spec.expand();
    std::string log;
    setLogCapture(&log);
    const auto restored = SweepJournal::load(
        journal.path, sweepFingerprint(jobs), jobs);
    setLogCapture(nullptr);
    EXPECT_EQ(restored.size(), jobs.size() - 1);
    EXPECT_NE(log.find("torn"), std::string::npos) << log;
}

TEST(Journal, CorruptChecksumEndsTheRestorablePrefix)
{
    const SweepSpec spec = smallSpec();
    TempPath journal("resilience_corrupt.journal");

    RunnerOptions options = quietOptions();
    options.journal = journal.path;
    SweepRunner(options).run(spec, &stubMetrics);

    std::string content = readFile(journal.path);
    // Flip a metric digit inside the SECOND record: record 1 dies,
    // and the scan refuses everything after it.
    std::size_t pos = content.find('\n');            // header
    pos = content.find('\n', pos + 1);               // record 0
    pos = content.find("ipc=", pos);
    ASSERT_NE(pos, std::string::npos);
    content[pos + 4] = content[pos + 4] == '9' ? '8' : '9';
    writeFile(journal.path, content);

    const std::vector<Job> jobs = spec.expand();
    std::string log;
    setLogCapture(&log);
    const auto restored = SweepJournal::load(
        journal.path, sweepFingerprint(jobs), jobs);
    setLogCapture(nullptr);
    EXPECT_EQ(restored.size(), 1u);
    EXPECT_NE(log.find("corrupt"), std::string::npos) << log;
}

TEST(Journal, FingerprintMismatchRefusesToResume)
{
    const SweepSpec spec = smallSpec();
    TempPath journal("resilience_mismatch.journal");

    RunnerOptions options = quietOptions();
    options.journal = journal.path;
    SweepRunner(options).run(spec, &stubMetrics);

    // The same journal against a DIFFERENT sweep (one more flip
    // threshold) must throw, not silently mix results.
    SweepSpec other = spec;
    other.flipThs.push_back(1500);
    const std::vector<Job> jobs = other.expand();
    EXPECT_THROW(SweepJournal::load(journal.path,
                                    sweepFingerprint(jobs), jobs),
                 registry::SpecError);

    // And a non-journal file is rejected by magic.
    writeFile(journal.path, "not a journal\n");
    EXPECT_THROW(SweepJournal::load(journal.path,
                                    sweepFingerprint(jobs), jobs),
                 registry::SpecError);
}

TEST(Journal, ResumeReemitsByteIdenticalArtifacts)
{
    const SweepSpec spec = smallSpec();
    TempPath journal("resilience_resume.journal");

    // The uninterrupted reference run (no journal at all).
    const SweepResult clean =
        SweepRunner(quietOptions()).run(spec, &stubMetrics);
    const std::string want_json = JsonSink().render(clean);
    const std::string want_csv = CsvSink().render(clean);
    const std::string want_table = TableSink().render(clean);

    // A journaled run, then a simulated crash: keep the header and
    // the first three records only.
    RunnerOptions options = quietOptions();
    options.journal = journal.path;
    SweepRunner(options).run(spec, &stubMetrics);
    std::string content = readFile(journal.path);
    std::size_t pos = 0;
    for (int lines = 0; lines < 4; ++lines)
        pos = content.find('\n', pos) + 1;
    writeFile(journal.path, content.substr(0, pos));

    // Resume: three jobs restore, the rest rerun, and every sink's
    // output is byte-identical to the uninterrupted run.
    options.resume = true;
    const SweepResult resumed =
        SweepRunner(options).run(spec, &stubMetrics);
    EXPECT_EQ(resumed.restoredCount(), 3u);
    EXPECT_EQ(JsonSink().render(resumed), want_json);
    EXPECT_EQ(CsvSink().render(resumed), want_csv);
    EXPECT_EQ(TableSink().render(resumed), want_table);

    // The journal was topped back up: a second resume restores all.
    options.resume = true;
    const SweepResult again =
        SweepRunner(options).run(spec, &stubMetrics);
    EXPECT_EQ(again.restoredCount(), spec.jobCount());
    EXPECT_EQ(JsonSink().render(again), want_json);
}

TEST(Journal, ResumeWithoutJournalKnobIsAnError)
{
    RunnerOptions options = quietOptions();
    options.resume = true;
    EXPECT_THROW(
        SweepRunner(options).run(smallSpec(), &stubMetrics),
        registry::SpecError);
}

TEST(Journal, MissingFileOnResumeStartsFresh)
{
    const SweepSpec spec = smallSpec();
    TempPath journal("resilience_fresh.journal");
    RunnerOptions options = quietOptions();
    options.journal = journal.path;
    options.resume = true; // Nothing to resume from: plain run.
    const SweepResult result =
        SweepRunner(options).run(spec, &stubMetrics);
    EXPECT_EQ(result.restoredCount(), 0u);
    EXPECT_EQ(result.failedCount(), 0u);
    // ...and the journal it wrote is complete.
    const std::vector<Job> jobs = spec.expand();
    EXPECT_EQ(SweepJournal::load(journal.path,
                                 sweepFingerprint(jobs), jobs)
                  .size(),
              jobs.size());
}

TEST(Journal, FailedJobsJournalAndRestoreTheirStatus)
{
    resetHooks();
    g_throwStdOnIndex = 1;
    const SweepSpec spec = smallSpec();
    TempPath journal("resilience_failrec.journal");

    RunnerOptions options = quietOptions(1);
    options.journal = journal.path;
    const SweepResult first =
        SweepRunner(options).run(spec, &hookedStub);
    EXPECT_EQ(first.countByStatus(JobStatus::Failed), 1u);
    const std::string want_json = JsonSink().render(first);

    // Resume with the hook cleared: the failure is NOT rerun — it
    // was journaled, so the artifacts reproduce byte-identically.
    resetHooks();
    options.resume = true;
    const SweepResult resumed =
        SweepRunner(options).run(spec, &hookedStub);
    EXPECT_EQ(resumed.restoredCount(), spec.jobCount());
    EXPECT_EQ(resumed.countByStatus(JobStatus::Failed), 1u);
    EXPECT_EQ(resumed.results[1].error,
              "unhandled exception: stub blew up (not a SpecError)");
    EXPECT_EQ(JsonSink().render(resumed), want_json);
}

// ------------------------------------- watchdog / retries / strict

TEST(Runner, NonSpecErrorExceptionBecomesFailedRow)
{
    resetHooks();
    g_throwStdOnIndex = 2;
    const SweepResult result =
        SweepRunner(quietOptions()).run(smallSpec(), &hookedStub);
    EXPECT_EQ(result.countByStatus(JobStatus::Failed), 1u);
    EXPECT_EQ(result.results[2].status, JobStatus::Failed);
    EXPECT_NE(result.results[2].error.find("unhandled exception"),
              std::string::npos)
        << result.results[2].error;
    // Everything else still ran.
    EXPECT_EQ(result.countByStatus(JobStatus::Ok),
              result.results.size() - 1);
    EXPECT_EQ(result.statusSummary(),
              "6 ok, 1 failed (7 jobs)");
}

TEST(Runner, WatchdogConvertsHungJobToTimeout)
{
    resetHooks();
    g_hangMsOnIndex = 1;
    g_hangMs = 1500;
    RunnerOptions options = quietOptions();
    options.jobTimeout = 0.15;
    const auto t0 = std::chrono::steady_clock::now();
    const SweepResult result =
        SweepRunner(options).run(smallSpec(), &hookedStub);
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(result.countByStatus(JobStatus::Timeout), 1u);
    EXPECT_EQ(result.results[1].status, JobStatus::Timeout);
    EXPECT_NE(result.results[1].error.find("watchdog"),
              std::string::npos)
        << result.results[1].error;
    // The pool survived: every other job finished OK, and the sweep
    // returned without waiting out the full hang.
    EXPECT_EQ(result.countByStatus(JobStatus::Ok),
              result.results.size() - 1);
    EXPECT_LT(elapsed, 1.4);
    // Give the abandoned worker time to drain before the test exits
    // (it holds only its own shared state).
    std::this_thread::sleep_for(std::chrono::milliseconds(1600));
}

TEST(Runner, RetriesRecoverTransientFailuresByteIdentically)
{
    const SweepSpec spec = smallSpec();
    const SweepResult clean =
        SweepRunner(quietOptions()).run(spec, &stubMetrics);

    resetHooks();
    g_failFirstAttemptsOnIndex = 3;
    g_failFirstN = 2;
    RunnerOptions options = quietOptions();
    options.retries = 3;
    options.retryBackoffMs = 1.0;
    const SweepResult retried =
        SweepRunner(options).run(spec, &hookedStub);
    EXPECT_EQ(retried.failedCount(), 0u);
    EXPECT_EQ(retried.results[3].attempts, 3u);
    // The recovered sweep's artifacts match an untroubled run's.
    EXPECT_EQ(JsonSink().render(retried), JsonSink().render(clean));
    EXPECT_EQ(CsvSink().render(retried), CsvSink().render(clean));
}

TEST(Runner, RetriesExhaustedReportsTheLastError)
{
    resetHooks();
    g_failFirstAttemptsOnIndex = 0;
    g_failFirstN = 100; // Never recovers.
    RunnerOptions options = quietOptions();
    options.retries = 2;
    options.retryBackoffMs = 1.0;
    const SweepResult result =
        SweepRunner(options).run(smallSpec(), &hookedStub);
    EXPECT_EQ(result.results[0].status, JobStatus::Failed);
    EXPECT_EQ(result.results[0].attempts, 3u);
    EXPECT_EQ(result.results[0].error, "transient stub failure");
}

TEST(Runner, StrictModeSkipsRemainingJobsAfterAFailure)
{
    resetHooks();
    g_throwStdOnIndex = 1;
    RunnerOptions options = quietOptions(1); // Serial: order fixed.
    options.strict = true;
    const SweepResult result =
        SweepRunner(options).run(smallSpec(), &hookedStub);
    EXPECT_EQ(result.results[0].status, JobStatus::Ok);
    EXPECT_EQ(result.results[1].status, JobStatus::Failed);
    for (std::size_t i = 2; i < result.results.size(); ++i) {
        EXPECT_EQ(result.results[i].status, JobStatus::Skipped) << i;
        EXPECT_NE(result.results[i].error.find("strict"),
                  std::string::npos);
    }
    EXPECT_EQ(result.statusSummary(),
              "1 ok, 1 failed, 5 skipped (7 jobs)");
    EXPECT_EQ(result.failedCount(), 6u);
}

TEST(Runner, SkippedJobsAreNotJournaledAndRerunOnResume)
{
    resetHooks();
    g_throwStdOnIndex = 1;
    const SweepSpec spec = smallSpec();
    TempPath journal("resilience_skip.journal");

    RunnerOptions options = quietOptions(1);
    options.strict = true;
    options.journal = journal.path;
    const SweepResult strict_run =
        SweepRunner(options).run(spec, &hookedStub);
    EXPECT_EQ(strict_run.countByStatus(JobStatus::Skipped), 5u);

    // Resume without strict and without the fault: the skipped jobs
    // (and only they, plus nothing for the journaled failure) rerun.
    resetHooks();
    options.strict = false;
    options.resume = true;
    const SweepResult resumed =
        SweepRunner(options).run(spec, &hookedStub);
    EXPECT_EQ(resumed.restoredCount(), 2u); // Ok job 0 + failed job 1.
    EXPECT_EQ(resumed.countByStatus(JobStatus::Skipped), 0u);
    EXPECT_EQ(resumed.countByStatus(JobStatus::Ok),
              resumed.results.size() - 1);
}

TEST(Runner, FailpointsKnobArmsForTheSweepAndDisarmsAfter)
{
    resetHooks();
    failpoint::disarmAll();
    SweepSpec spec = smallSpec();
    spec.failpoints = "test.resilience-site:error:after=2";
    const SweepResult result =
        SweepRunner(quietOptions(1)).run(spec, &hookedStub);
    // Jobs 0 and 1 pass, every later job hits the armed site.
    EXPECT_EQ(result.countByStatus(JobStatus::Ok), 2u);
    EXPECT_EQ(result.countByStatus(JobStatus::Failed),
              result.results.size() - 2);
    EXPECT_NE(result.results[2].error.find(
                  "failpoint 'test.resilience-site'"),
              std::string::npos)
        << result.results[2].error;
    // The sweep disarmed its own failpoints on the way out.
    EXPECT_FALSE(failpoint::anyArmed());

    // An unknown site fails the sweep up front with the candidates.
    spec.failpoints = "no.such.site:error";
    EXPECT_THROW(
        SweepRunner(quietOptions(1)).run(spec, &hookedStub),
        registry::SpecError);
}

TEST(Runner, StatusNamesRoundTrip)
{
    for (JobStatus s : {JobStatus::Ok, JobStatus::Failed,
                        JobStatus::Timeout, JobStatus::Skipped})
        EXPECT_EQ(jobStatusFromName(jobStatusName(s)), s);
    EXPECT_THROW(jobStatusFromName("exploded"), registry::SpecError);
}

// ------------------------------------------------- status rendering

TEST(Sinks, StatusAppearsInTableTrailerAndJson)
{
    resetHooks();
    g_hangMsOnIndex = 0;
    g_hangMs = 1000;
    g_throwStdOnIndex = 2;
    RunnerOptions options = quietOptions(1);
    options.jobTimeout = 0.1;
    const SweepResult result =
        SweepRunner(options).run(smallSpec(), &hookedStub);
    ASSERT_EQ(result.results[0].status, JobStatus::Timeout);
    ASSERT_EQ(result.results[2].status, JobStatus::Failed);

    const std::string table = TableSink().render(result);
    EXPECT_NE(table.find("TIMEOUT: job watchdog"),
              std::string::npos)
        << table;
    EXPECT_NE(table.find("FAILED: unhandled exception"),
              std::string::npos);

    const std::string json = JsonSink().render(result);
    EXPECT_NE(json.find("\"status\": \"timeout\""),
              std::string::npos);
    EXPECT_NE(json.find("\"status\": \"failed\""),
              std::string::npos);
    // Ok jobs carry no status key at all (clean artifacts stay
    // byte-identical to the pre-resilience schema).
    const SweepResult ok_run = [&] {
        resetHooks();
        return SweepRunner(quietOptions()).run(smallSpec(),
                                               &stubMetrics);
    }();
    EXPECT_EQ(JsonSink().render(ok_run).find("\"status\""),
              std::string::npos);
    std::this_thread::sleep_for(std::chrono::milliseconds(1100));
}

TEST(Sinks, JournalAppendFailpointDegradesGracefully)
{
    resetHooks();
    const SweepSpec spec = smallSpec();
    TempPath journal("resilience_jfail.journal");
    SweepSpec armed = spec;
    armed.failpoints = "journal.append:eio:after=2";
    RunnerOptions options = quietOptions(1);
    options.journal = journal.path;
    std::string log;
    setLogCapture(&log);
    const SweepResult result =
        SweepRunner(options).run(armed, &hookedStub);
    setLogCapture(nullptr);
    // The sweep itself is unharmed; journaling shut down with a
    // warning after the injected EIO.
    EXPECT_EQ(result.failedCount(), 0u);
    EXPECT_NE(log.find("journal disabled"), std::string::npos)
        << log;
    const std::vector<Job> jobs = spec.expand();
    EXPECT_EQ(SweepJournal::load(journal.path,
                                 sweepFingerprint(jobs), jobs)
                  .size(),
              2u);
}

} // namespace
} // namespace mithril::runner
