/**
 * @file
 * Unit tests for the parallel experiment runner: the work-stealing
 * pool, sweep-grid expansion and seeding, determinism of the result
 * sinks across thread counts, per-job failure surfacing, and the JSON
 * artifact schema (golden file).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/config.hh"
#include "common/logging.hh"
#include "registry/attack_registry.hh"
#include "runner/runner.hh"
#include "runner/sinks.hh"
#include "runner/sweep_spec.hh"
#include "runner/thread_pool.hh"

namespace mithril::runner
{
namespace
{

// ------------------------------------------------------------- pool

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kCount = 500;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(kCount,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ZeroCountIsANoop)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SingleWorkerStillCompletes)
{
    ThreadPool pool(1);
    std::atomic<int> sum{0};
    pool.parallelFor(100, [&](std::size_t i) {
        sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, PropagatesTaskExceptions)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](std::size_t i) {
                                      ran.fetch_add(1);
                                      if (i == 13)
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);
    // Remaining tasks still ran to completion.
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, SurvivesAThrowingParallelForAndRunsAgain)
{
    // The exception costs one parallelFor call, never the pool: the
    // same workers must keep serving later parallelFors at full
    // strength (what keeps one bad sweep job from wedging the rest).
    ThreadPool pool(4);
    for (int round = 0; round < 3; ++round) {
        EXPECT_THROW(pool.parallelFor(32,
                                      [&](std::size_t i) {
                                          if (i % 7 == 3)
                                              throw std::runtime_error(
                                                  "boom");
                                      }),
                     std::runtime_error);
        std::atomic<int> ran{0};
        pool.parallelFor(64,
                         [&](std::size_t) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), 64) << "round " << round;
    }
}

TEST(ThreadPool, NestedParallelForPropagatesInnerExceptions)
{
    // A throw inside a re-entrant (nested) parallelFor — a shard
    // body failing inside a sweep job — must surface through both
    // levels and still leave the pool serviceable.
    for (unsigned workers : {1u, 4u}) {
        ThreadPool pool(workers);
        EXPECT_THROW(
            pool.parallelFor(3,
                             [&](std::size_t) {
                                 pool.parallelFor(
                                     5, [&](std::size_t j) {
                                         if (j == 2)
                                             throw std::
                                                 runtime_error(
                                                     "inner");
                                     });
                             }),
            std::runtime_error);
        std::atomic<int> ran{0};
        pool.parallelFor(16,
                         [&](std::size_t) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), 16) << workers << " workers";
    }
}

TEST(ThreadPool, SubmittedTasksDrainBeforeDestruction)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, NestedParallelForFromInsideATaskCompletes)
{
    // A task that re-enters parallelFor on its own pool (the sharded
    // engine inside a sweep job) must not deadlock, even when the
    // pool has a single worker — the caller claims indices itself.
    for (unsigned workers : {1u, 2u, 4u}) {
        ThreadPool pool(workers);
        std::atomic<int> inner{0};
        pool.parallelFor(3, [&](std::size_t) {
            EXPECT_EQ(ThreadPool::current(), &pool);
            pool.parallelFor(5, [&](std::size_t) {
                inner.fetch_add(1);
            });
        });
        EXPECT_EQ(inner.load(), 15) << workers << " workers";
    }
}

TEST(ThreadPool, CurrentIsNullOutsidePoolTasks)
{
    EXPECT_EQ(ThreadPool::current(), nullptr);
    ThreadPool pool(2);
    pool.parallelFor(2, [&](std::size_t) {
        EXPECT_EQ(ThreadPool::current(), &pool);
    });
    EXPECT_EQ(ThreadPool::current(), nullptr);
}

TEST(ThreadPool, ExternalParallelForRespectsTheWorkerCap)
{
    // An external caller only waits: every fn runs on a pool worker,
    // never on the calling thread, so a pool sized `jobs=N` runs at
    // most N bodies concurrently (the contract SweepRunner sizes
    // simulations by).
    ThreadPool pool(2);
    const auto caller = std::this_thread::get_id();
    std::mutex mutex;
    std::set<std::thread::id> ids;
    std::atomic<int> live{0};
    std::atomic<int> peak{0};
    pool.parallelFor(32, [&](std::size_t) {
        const int now = live.fetch_add(1) + 1;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        {
            std::lock_guard<std::mutex> lock(mutex);
            ids.insert(std::this_thread::get_id());
        }
        live.fetch_sub(1);
    });
    EXPECT_EQ(ids.count(caller), 0u);
    EXPECT_LE(ids.size(), 2u);
    EXPECT_LE(peak.load(), 2);
}

TEST(ThreadPool, ExternalParallelForFinishesWhenWorkersFreeUp)
{
    // A busy worker delays but never deadlocks an external
    // parallelFor: the bodies run once the worker frees.
    ThreadPool pool(1);
    std::atomic<bool> release{false};
    pool.submit([&] {
        while (!release.load())
            std::this_thread::yield();
    });
    std::atomic<int> ran{0};
    std::thread helper([&] {
        pool.parallelFor(8, [&](std::size_t) { ran.fetch_add(1); });
    });
    release.store(true);
    helper.join();
    EXPECT_EQ(ran.load(), 8);
}

// -------------------------------------------------------- expansion

TEST(SweepSpec, DefaultSpecIsOneJob)
{
    SweepSpec spec;
    EXPECT_EQ(spec.jobCount(), 1u);
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].spec.scheme, "mithril");
    EXPECT_EQ(jobs[0].spec.flipTh, 6250u);
    EXPECT_EQ(jobs[0].spec.workload, "mix-high");
    EXPECT_EQ(jobs[0].spec.attack, "none");
    EXPECT_FALSE(jobs[0].isBaseline);
}

TEST(SweepSpec, GridCountIsCartesianProduct)
{
    SweepSpec spec;
    spec.schemes = {"mithril", "parfm", "para"};
    spec.flipThs = {50000, 6250};
    spec.rfmThs = {64, 128};
    spec.cases = {{"mix-high", "none"},
                  {"mt-fft", "none"},
                  {"mix-high", "multi-sided"}};
    EXPECT_EQ(spec.jobCount(), 3u * 2u * 2u * 3u);
    EXPECT_EQ(spec.expand().size(), spec.jobCount());

    spec.includeBaseline = true;
    EXPECT_EQ(spec.jobCount(), 3u * 2u * 2u * 3u + 3u);
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), spec.jobCount());
    // Baselines come first, one per case, unprotected.
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(jobs[i].isBaseline);
        EXPECT_EQ(jobs[i].spec.scheme, "none");
    }
    EXPECT_FALSE(jobs[3].isBaseline);
    // Indices are the expansion order.
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, i);
}

TEST(SweepSpec, ExpansionIsDeterministic)
{
    SweepSpec spec;
    spec.schemes = {"mithril", "blockhammer"};
    spec.flipThs = {25000, 3125};
    spec.includeBaseline = true;
    const auto a = spec.expand();
    const auto b = spec.expand();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].label, b[i].label);
        EXPECT_EQ(a[i].spec.seed, b[i].spec.seed);
    }
}

TEST(SweepSpec, SharedSeedPolicyUsesSweepSeedVerbatim)
{
    SweepSpec spec;
    spec.schemes = {"mithril"};
    spec.flipThs = {50000, 6250};
    spec.seed = 1234;
    for (const Job &job : spec.expand()) {
        EXPECT_EQ(job.spec.seed, 1234u);
        EXPECT_EQ(job.spec.schemeSeed, sim::ExperimentSpec().schemeSeed);
    }
}

TEST(SweepSpec, PerJobSeedPolicyGivesDistinctDeterministicSeeds)
{
    SweepSpec spec;
    spec.schemes = {"mithril"};
    spec.flipThs = {50000, 25000, 6250};
    spec.seed = 99;
    spec.seedPolicy = SeedPolicy::PerJob;
    const auto jobs = spec.expand();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].spec.seed, mixSeed(99, i));
        for (std::size_t j = i + 1; j < jobs.size(); ++j)
            EXPECT_NE(jobs[i].spec.seed, jobs[j].spec.seed);
    }
}

TEST(SweepSpec, WarmupRuleFollowsAttack)
{
    SweepSpec spec;
    spec.trackerWarmupActs = 1000;
    spec.cases = {{"mix-high", "none"}, {"mix-high", "multi-sided"}};
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_TRUE(jobs[0].spec.warmupFromWorkload);
    EXPECT_FALSE(jobs[1].spec.warmupFromWorkload);
    EXPECT_EQ(jobs[0].spec.trackerWarmupActs, 1000u);
}

TEST(SweepSpec, FromParamsParsesLists)
{
    const char *argv[] = {"test",
                          "schemes=mithril,parfm",
                          "flip=50000,1500",
                          "rfm=64",
                          "workloads=mix-high,mt-fft",
                          "attacks=none,multi-sided",
                          "cores=4",
                          "instr=1000",
                          "seed=7",
                          "baseline=1",
                          "seed-policy=per-job"};
    const ParamSet params =
        ParamSet::fromArgs(static_cast<int>(std::size(argv)), argv);
    const SweepSpec spec = SweepSpec::fromParams(params);
    EXPECT_EQ(spec.schemes.size(), 2u);
    EXPECT_EQ(spec.flipThs.size(), 2u);
    EXPECT_EQ(spec.rfmThs.size(), 1u);
    EXPECT_EQ(spec.cases.size(), 4u); // workloads x attacks
    EXPECT_EQ(spec.cores, 4u);
    EXPECT_EQ(spec.instrPerCore, 1000u);
    EXPECT_EQ(spec.seed, 7u);
    EXPECT_TRUE(spec.includeBaseline);
    EXPECT_EQ(spec.seedPolicy, SeedPolicy::PerJob);
    EXPECT_EQ(spec.jobCount(), 2u * 2u * 1u * 4u + 4u);
}

TEST(SweepSpec, FromParamsCanonicalizesAliases)
{
    ParamSet params;
    params.set("schemes", "mithril_plus,rfm_graphene");
    const SweepSpec spec = SweepSpec::fromParams(params);
    ASSERT_EQ(spec.schemes.size(), 2u);
    EXPECT_EQ(spec.schemes[0], "mithril+");
    EXPECT_EQ(spec.schemes[1], "rfm-graphene");
}

TEST(SweepSpec, FromParamsRejectsUnknownKeysAndBadRanges)
{
    setLogThrowOnFatal(true);
    {
        // Typo'd axis ("flips=") must not silently run defaults.
        ParamSet params;
        params.set("flips", "50000,1500");
        EXPECT_THROW(SweepSpec::fromParams(params),
                     std::runtime_error);
    }
    {
        // Caller-owned keys are accepted only when listed.
        ParamSet params;
        params.set("jobs", "4");
        EXPECT_THROW(SweepSpec::fromParams(params),
                     std::runtime_error);
        EXPECT_NO_THROW(SweepSpec::fromParams(params, {"jobs"}));
    }
    {
        // Values beyond uint32 must fail, not wrap.
        ParamSet params;
        params.set("flip", "4294973546");
        EXPECT_THROW(SweepSpec::fromParams(params),
                     std::runtime_error);
    }
    {
        // Unknown axis names report the registered candidates (the
        // fatal exception carries no text, so capture the log).
        ParamSet params;
        params.set("schemes", "mithril,nosuch");
        std::string capture;
        setLogCapture(&capture);
        EXPECT_THROW(SweepSpec::fromParams(params),
                     std::runtime_error);
        setLogCapture(nullptr);
        EXPECT_NE(capture.find("rfm-graphene"), std::string::npos)
            << capture;
    }
    setLogThrowOnFatal(false);
}

TEST(SweepSpec, EntryDeclaredTunablesRideAlong)
{
    ParamSet params;
    params.set("schemes", "mithril,para");
    params.set("attacks", "multi-sided");
    params.set("victims", "8");
    params.set("para-p", "0.5");
    const SweepSpec spec = SweepSpec::fromParams(params);
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 2u);
    // Every job keeps the attack knob; only para keeps para-p.
    EXPECT_EQ(jobs[0].spec.extras.getString("victims"), "8");
    EXPECT_FALSE(jobs[0].spec.extras.has("para-p"));
    EXPECT_EQ(jobs[1].spec.extras.getString("para-p"), "0.5");
    // Each expanded spec validates as-is.
    EXPECT_NO_THROW(jobs[0].spec.validate());
    EXPECT_NO_THROW(jobs[1].spec.validate());
}

TEST(SweepSpec, AttackNamesResolveInRegistry)
{
    for (const char *name :
         {"none", "double-sided", "multi-sided", "cbf-pollution"}) {
        const auto *entry = registry::attackRegistry().find(name);
        ASSERT_NE(entry, nullptr) << name;
        EXPECT_EQ(entry->name, name);
    }
}

// ------------------------------------------------------ determinism

/** The attack enum values the original schema encoded in bitFlips. */
std::uint64_t
attackIndex(const std::string &attack)
{
    if (attack == "none")
        return 0;
    if (attack == "double-sided")
        return 1;
    if (attack == "multi-sided")
        return 2;
    return 3;
}

/** Deterministic stand-in for sim::runExperiment: metrics are a pure
 *  function of the job description. */
sim::RunMetrics
stubMetrics(const Job &job)
{
    sim::RunMetrics m;
    m.aggIpc =
        1.0 + 0.01 * static_cast<double>(job.spec.flipTh % 97);
    m.energyPj = static_cast<double>(job.spec.seed % 1000) * 3.5;
    m.acts = job.spec.flipTh + job.spec.instrPerCore;
    m.bitFlips = attackIndex(job.spec.attack);
    m.trackerBytesPerBank =
        static_cast<double>(job.spec.rfmTh) * 16.0;
    // A small telemetry sheet on non-baseline jobs only, so the
    // golden covers both the per-job "telemetry" block and its
    // absence.
    if (!job.isBaseline) {
        m.telemetry["tracker.cbs.touches"] =
            static_cast<double>(m.acts);
        m.telemetry["tracker.logic_ops"] =
            static_cast<double>(m.acts + job.spec.rfmTh);
    }
    return m;
}

SweepSpec
bigStubSpec()
{
    SweepSpec spec;
    spec.schemes = {"mithril", "mithril+", "parfm", "graphene"};
    spec.flipThs = {50000, 12500, 6250, 1500};
    spec.rfmThs = {32, 256};
    spec.cases = {{"mix-high", "none"}, {"mix-high", "multi-sided"}};
    spec.includeBaseline = true;
    return spec;
}

TEST(SweepRunner, SinkOutputIsIdenticalAcrossThreadCounts)
{
    const SweepSpec spec = bigStubSpec();
    RunnerOptions serial;
    serial.jobs = 1;
    serial.progress = false;
    RunnerOptions parallel;
    parallel.jobs = 8;
    parallel.progress = false;

    const SweepResult r1 =
        SweepRunner(serial).run(spec, &stubMetrics);
    const SweepResult r8 =
        SweepRunner(parallel).run(spec, &stubMetrics);
    ASSERT_EQ(r1.results.size(), r8.results.size());

    // Byte-identical artifacts from every sink.
    EXPECT_EQ(TableSink().render(r1), TableSink().render(r8));
    EXPECT_EQ(JsonSink().render(r1), JsonSink().render(r8));
    EXPECT_EQ(CsvSink().render(r1), CsvSink().render(r8));
}

TEST(SweepRunner, RealSimulationIsIdenticalAcrossThreadCounts)
{
    // Tiny but real end-to-end runs, attacked and benign.
    SweepSpec spec;
    spec.schemes = {"mithril", "para"};
    spec.flipThs = {6250};
    spec.cases = {{"mix-high", "none"}, {"mix-high", "double-sided"}};
    spec.cores = 2;
    spec.instrPerCore = 2000;
    spec.includeBaseline = true;

    RunnerOptions serial;
    serial.jobs = 1;
    serial.progress = false;
    RunnerOptions parallel;
    parallel.jobs = 8;
    parallel.progress = false;

    const SweepResult r1 = SweepRunner(serial).run(spec);
    const SweepResult r8 = SweepRunner(parallel).run(spec);
    EXPECT_EQ(JsonSink().render(r1), JsonSink().render(r8));
    EXPECT_EQ(TableSink().render(r1), TableSink().render(r8));
    EXPECT_EQ(CsvSink().render(r1), CsvSink().render(r8));
}

TEST(SweepRunner, EngineWarmupIsAppliedAndShardInvariant)
{
    // warmup= must reach the tracker on engine-only runs (it warms
    // from the source stream prefix at tick 0, like the System path
    // warms from the generators), and — like everything else — must
    // not depend on the shard count.
    auto run = [](std::uint64_t warmup, std::uint32_t shards) {
        sim::ExperimentSpec spec;
        spec.scheme = "cbt";
        spec.flipTh = 800;
        spec.attack = "double-sided";
        spec.source = "attack";
        spec.engineActs = 4000;
        spec.trackerWarmupActs = warmup;
        spec.shards = shards;
        return sim::runExperiment(spec);
    };
    const sim::RunMetrics cold = run(0, 1);
    const sim::RunMetrics warm1 = run(8000, 1);
    const sim::RunMetrics warm4 = run(8000, 4);
    // The warm-up pushes CBT's hot leaves over the group-refresh
    // threshold inside the measured window; a cold tree stays below
    // it for this budget.
    EXPECT_NE(warm1.preventiveRefreshes, cold.preventiveRefreshes);
    EXPECT_EQ(warm1.preventiveRefreshes, warm4.preventiveRefreshes);
    EXPECT_EQ(warm1.maxDisturbance, warm4.maxDisturbance);
    EXPECT_EQ(warm1.simTicks, warm4.simTicks);
}

TEST(SweepSpec, SourceAndShardAxesExpand)
{
    const SweepSpec spec = SweepSpec::fromParams(
        ParamSet::fromString("schemes=mithril,para sources=attack "
                             "attacks=multi-sided shards=1,2 "
                             "acts=20000"));
    EXPECT_EQ(spec.jobCount(), 2u * 1u * 2u);
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 4u);
    for (const Job &job : jobs) {
        EXPECT_EQ(job.spec.source, "attack");
        EXPECT_EQ(job.spec.attack, "multi-sided");
        EXPECT_EQ(job.spec.engineActs, 20000u);
        EXPECT_TRUE(job.spec.engineRun());
        EXPECT_NE(job.label.find("/attack/s"), std::string::npos)
            << job.label;
    }
    EXPECT_EQ(jobs[0].spec.shards, 1u);
    EXPECT_EQ(jobs[1].spec.shards, 2u);
}

TEST(SweepRunner, EngineOnlySweepIsDeterministicAcrossEverything)
{
    // An engine-only (sources=) grid must produce identical sink
    // output at any jobs= count, and — because sharded output is
    // byte-identical to single-threaded output — the shards=1 and
    // shards=2 cells of each scheme must carry identical metrics.
    SweepSpec spec;
    spec.schemes = {"mithril", "para"};
    spec.sources = {"attack"};
    spec.shardsList = {1, 2};
    spec.cases = {{"mix-high", "multi-sided"}};
    spec.engineActs = 20000;

    RunnerOptions serial;
    serial.jobs = 1;
    serial.progress = false;
    RunnerOptions parallel;
    parallel.jobs = 4;
    parallel.progress = false;

    const SweepResult r1 = SweepRunner(serial).run(spec);
    const SweepResult r4 = SweepRunner(parallel).run(spec);
    EXPECT_EQ(r1.failedCount(), 0u);
    EXPECT_EQ(JsonSink().render(r1), JsonSink().render(r4));

    ASSERT_EQ(r1.results.size(), 4u);
    for (std::size_t scheme = 0; scheme < 2; ++scheme) {
        const sim::RunMetrics &s1 =
            r1.results[2 * scheme + 0].metrics;
        const sim::RunMetrics &s2 =
            r1.results[2 * scheme + 1].metrics;
        EXPECT_EQ(r1.results[2 * scheme].job.spec.shards, 1u);
        EXPECT_EQ(r1.results[2 * scheme + 1].job.spec.shards, 2u);
        EXPECT_EQ(s1.acts, 20000u);
        EXPECT_EQ(s1.acts, s2.acts);
        EXPECT_EQ(s1.rfmIssued, s2.rfmIssued);
        EXPECT_EQ(s1.preventiveRefreshes, s2.preventiveRefreshes);
        EXPECT_EQ(s1.bitFlips, s2.bitFlips);
        EXPECT_EQ(s1.maxDisturbance, s2.maxDisturbance);
        EXPECT_EQ(s1.simTicks, s2.simTicks);
    }
}

TEST(SweepRunner, RejectedConfigurationFailsItsJobOnly)
{
    // Mithril at flip=100 is infeasible; the PARA cell and the
    // baseline still run, and the sweep reports the error per job.
    SweepSpec spec;
    spec.schemes = {"mithril", "para"};
    spec.flipThs = {100};
    spec.cores = 1;
    spec.instrPerCore = 500;
    spec.includeBaseline = true;

    RunnerOptions options;
    options.jobs = 2;
    options.progress = false;
    const SweepResult result = SweepRunner(options).run(spec);
    ASSERT_EQ(result.results.size(), 3u);
    EXPECT_EQ(result.failedCount(), 1u);

    const JobResult *mithril = result.find("mithril", 100, "mix-high");
    ASSERT_NE(mithril, nullptr);
    EXPECT_TRUE(mithril->failed());
    EXPECT_NE(mithril->error.find("infeasible"), std::string::npos)
        << mithril->error;

    const JobResult *para = result.find("para", 100, "mix-high");
    ASSERT_NE(para, nullptr);
    EXPECT_FALSE(para->failed());
    EXPECT_GT(para->metrics.aggIpc, 0.0);

    // Sinks surface the failure instead of dying.
    const std::string table = TableSink().render(result);
    EXPECT_NE(table.find("FAILED"), std::string::npos);
    const std::string json = JsonSink().render(result);
    EXPECT_NE(json.find("\"error\""), std::string::npos);
}

TEST(SweepResult, FindAndBaselineLookups)
{
    const SweepSpec spec = bigStubSpec();
    RunnerOptions options;
    options.jobs = 2;
    options.progress = false;
    const SweepResult result =
        SweepRunner(options).run(spec, &stubMetrics);

    const JobResult *r = result.find("parfm", 12500, "mix-high",
                                     "multi-sided", 256);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->job.spec.rfmTh, 256u);
    EXPECT_FALSE(r->job.isBaseline);

    const JobResult *base =
        result.baseline("mix-high", "multi-sided");
    ASSERT_NE(base, nullptr);
    EXPECT_TRUE(base->job.isBaseline);
    EXPECT_EQ(base->job.spec.scheme, "none");

    EXPECT_EQ(result.find("twice", 12500, "mix-high"), nullptr);
    EXPECT_EQ(result.baseline("gups"), nullptr);
}

// ----------------------------------------------------- JSON schema

TEST(JsonSink, GoldenFileSchema)
{
    // A fixed spec with stub metrics: the artifact must match the
    // checked-in golden byte for byte. Regenerate with:
    //   MITHRIL_UPDATE_GOLDEN=1 ./test_runner
    //       --gtest_filter=JsonSink.GoldenFileSchema
    SweepSpec spec;
    spec.schemes = {"mithril", "parfm"};
    spec.flipThs = {50000, 6250};
    spec.rfmThs = {64};
    spec.cases = {{"mix-high", "none"}, {"mt-fft", "multi-sided"}};
    spec.cores = 4;
    spec.instrPerCore = 1000;
    spec.seed = 7;
    spec.includeBaseline = true;

    RunnerOptions options;
    options.jobs = 4;
    options.progress = false;
    const SweepResult result =
        SweepRunner(options).run(spec, &stubMetrics);
    const std::string artifact = JsonSink().render(result);

    const std::string golden_path =
        std::string(MITHRIL_SOURCE_DIR) +
        "/tests/golden/sweep_v3.json";
    if (std::getenv("MITHRIL_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(golden_path);
        out << artifact;
        GTEST_SKIP() << "regenerated " << golden_path;
    }
    std::ifstream in(golden_path);
    ASSERT_TRUE(in) << "missing golden file " << golden_path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(artifact, buffer.str());
}

} // namespace
} // namespace mithril::runner
