/**
 * @file
 * End-to-end safety validation — the paper's central claim, checked
 * against the ground-truth oracle at maximum activation rates:
 *
 *  - Every deterministic scheme (Mithril, Mithril+, Graphene, TWiCe,
 *    CBT) keeps every victim strictly below FlipTH under a battery of
 *    attack patterns (parameterized sweep).
 *  - The RFM-Graphene strawman FAILS exactly the way Figure 2
 *    predicts: the concentration attack drives disturbance far past
 *    what the same tracking with ARR would allow.
 *  - PARFM survives the same attacks in (seeded) practice.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/random.hh"
#include "dram/timing.hh"
#include "registry/scheme_registry.hh"
#include "sim/act_harness.hh"
#include "trackers/graphene.hh"
#include "trackers/rfm_graphene.hh"

namespace mithril
{
namespace
{

enum class Pattern
{
    DoubleSided,
    MultiSided32,
    RotatingDistinct,
    RandomHot,
    SkewedZipf,
};

const char *
patternName(Pattern p)
{
    switch (p) {
      case Pattern::DoubleSided:      return "double-sided";
      case Pattern::MultiSided32:     return "multi-sided-32";
      case Pattern::RotatingDistinct: return "rotating-distinct";
      case Pattern::RandomHot:        return "random-hot";
      case Pattern::SkewedZipf:       return "skewed-zipf";
    }
    return "?";
}

RowId
patternRow(Pattern p, std::uint64_t i, Rng &rng)
{
    switch (p) {
      case Pattern::DoubleSided:
        return 2000 + 2 * static_cast<RowId>(i % 2);
      case Pattern::MultiSided32:
        return 2000 + 2 * static_cast<RowId>(i % 33);
      case Pattern::RotatingDistinct:
        return 2000 + 2 * static_cast<RowId>(i % 500);
      case Pattern::RandomHot:
        return 2000 + static_cast<RowId>(rng.nextBounded(256));
      case Pattern::SkewedZipf:
        return 2000 + static_cast<RowId>(rng.nextZipf(1024, 1.2));
    }
    return 0;
}

struct SafetyCase
{
    const char *scheme;
    std::uint32_t flipTh;
    Pattern pattern;
};

std::string
caseName(const ::testing::TestParamInfo<SafetyCase> &info)
{
    std::string s = std::string(info.param.scheme) + "_" +
                    std::to_string(info.param.flipTh) + "_" +
                    patternName(info.param.pattern);
    for (auto &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

class DeterministicSafety
    : public ::testing::TestWithParam<SafetyCase>
{
};

TEST_P(DeterministicSafety, NoVictimReachesFlipTh)
{
    const SafetyCase &tc = GetParam();
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();

    registry::SchemeKnobs knobs;
    knobs.flipTh = tc.flipTh;
    knobs.adTh = 0;  // Pure Theorem 1 configuration.
    auto tracker = registry::makeScheme(tc.scheme, knobs.toParams(),
                                        {timing, geom});
    ASSERT_NE(tracker, nullptr);

    sim::ActHarnessConfig cfg;
    cfg.timing = timing;
    cfg.flipTh = tc.flipTh;
    sim::ActHarness harness(cfg, tracker.get());

    Rng rng(tc.flipTh * 7 + static_cast<unsigned>(tc.pattern));
    // 1.5 refresh windows at the maximum single-bank ACT rate.
    const std::uint64_t acts =
        dram::maxActsPerWindow(timing) * 3 / 2;
    harness.run(acts, [&](std::uint64_t i) {
        return patternRow(tc.pattern, i, rng);
    });

    EXPECT_EQ(harness.oracle().bitFlips(), 0u)
        << "max disturbance "
        << harness.oracle().maxDisturbanceEver();
    EXPECT_LT(harness.oracle().maxDisturbanceEver(),
              static_cast<double>(tc.flipTh));
}

std::vector<SafetyCase>
deterministicCases()
{
    std::vector<SafetyCase> cases;
    const char *const schemes[] = {
        "mithril",
        "mithril+",
        "graphene",
        "twice",
    };
    const Pattern patterns[] = {
        Pattern::DoubleSided, Pattern::MultiSided32,
        Pattern::RotatingDistinct, Pattern::RandomHot,
        Pattern::SkewedZipf,
    };
    for (auto s : schemes)
        for (std::uint32_t flip : {3125u, 6250u})
            for (auto p : patterns)
                cases.push_back({s, flip, p});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Battery, DeterministicSafety,
                         ::testing::ValuesIn(deterministicCases()),
                         caseName);

TEST(AdaptiveSafety, MithrilWithAdth200StillSafe)
{
    // Theorem 2 configurations under the hottest pattern.
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    for (std::uint32_t flip : {3125u, 6250u}) {
        registry::SchemeKnobs knobs;
        knobs.flipTh = flip;
        knobs.adTh = 200;
        auto tracker = registry::makeScheme(
            "mithril", knobs.toParams(), {timing, geom});

        sim::ActHarnessConfig cfg;
        cfg.timing = timing;
        cfg.flipTh = flip;
        sim::ActHarness harness(cfg, tracker.get());
        harness.run(dram::maxActsPerWindow(timing) * 3 / 2,
                    [](std::uint64_t i) {
                        return 2000 + 2 * static_cast<RowId>(i % 2);
                    });
        EXPECT_EQ(harness.oracle().bitFlips(), 0u) << flip;
    }
}

TEST(ParfmSafety, SurvivesBatteryInPractice)
{
    // Probabilistic guarantee: with the auto-derived RFM_TH the seeded
    // runs must not flip (failure probability ~1e-15).
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    registry::SchemeKnobs knobs;
    knobs.flipTh = 6250;
    auto tracker = registry::makeScheme("parfm", knobs.toParams(),
                                        {timing, geom});

    sim::ActHarnessConfig cfg;
    cfg.timing = timing;
    cfg.flipTh = 6250;
    sim::ActHarness harness(cfg, tracker.get());
    Rng rng(123);
    harness.run(dram::maxActsPerWindow(timing),
                [&](std::uint64_t i) {
                    return patternRow(Pattern::RotatingDistinct, i,
                                      rng);
                });
    EXPECT_EQ(harness.oracle().bitFlips(), 0u);
}

TEST(RfmGrapheneFailure, ConcentrationAttackDefeatsIt)
{
    // Figure 2: the buffered strawman cannot protect a FlipTH that the
    // same tracker with ARR handles trivially. Threshold 2K, RFM_TH 64
    // -> the drain backlog lets a victim accumulate ~20K disturbances.
    const dram::Timing timing = dram::ddr5_4800();
    const std::uint32_t threshold = 2000;

    trackers::RfmGrapheneParams params;
    params.threshold = threshold;
    params.rfmTh = 64;
    params.nEntry = trackers::Graphene::requiredEntries(
        dram::maxActsPerWindow(timing), threshold);
    params.resetInterval = timing.tREFW;
    trackers::RfmGraphene tracker(1, params);

    sim::ActHarnessConfig cfg;
    cfg.timing = timing;
    cfg.flipTh = 10000;  // Would be safe under ARR-Graphene (~4T).
    sim::ActHarness harness(cfg, &tracker);

    // Concentration attack: drive Q rows to the threshold round-robin
    // inside half a tREFW (so the table reset cannot save the scheme),
    // then keep hammering the last pair while the queue drains.
    const std::uint64_t q = 150;
    const std::uint64_t phase1 = q * threshold;
    harness.run(dram::maxActsPerWindow(timing),
                [&](std::uint64_t i) {
                    if (i < phase1)
                        return static_cast<RowId>(2000 + 2 * (i % q));
                    const RowId last = static_cast<RowId>(
                        2000 + 2 * (q - 1));
                    return (i % 2) ? last : last - 2;
                });

    EXPECT_GT(harness.oracle().bitFlips(), 0u)
        << "strawman unexpectedly survived; max disturbance "
        << harness.oracle().maxDisturbanceEver();
    EXPECT_GT(tracker.maxQueueDepth(), 10u);
}

TEST(RfmGrapheneFailure, MithrilSurvivesTheSameAttack)
{
    // The exact attack that defeats the strawman is harmless against
    // Mithril at the same FlipTH — the paper's motivating contrast.
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    registry::SchemeKnobs knobs;
    knobs.flipTh = 10000;
    knobs.adTh = 0;
    auto tracker = registry::makeScheme("mithril", knobs.toParams(),
                                        {timing, geom});

    sim::ActHarnessConfig cfg;
    cfg.timing = timing;
    cfg.flipTh = 10000;
    sim::ActHarness harness(cfg, tracker.get());
    const std::uint64_t q = 150;
    const std::uint64_t phase1 = q * 2000;
    harness.run(dram::maxActsPerWindow(timing),
                [&](std::uint64_t i) {
                    if (i < phase1)
                        return static_cast<RowId>(2000 + 2 * (i % q));
                    const RowId last = static_cast<RowId>(
                        2000 + 2 * (q - 1));
                    return (i % 2) ? last : last - 2;
                });
    EXPECT_EQ(harness.oracle().bitFlips(), 0u);
}

TEST(UnprotectedBaseline, EveryPatternFlipsBits)
{
    // Sanity: the attack battery is actually dangerous when no
    // protection is present.
    const dram::Timing timing = dram::ddr5_4800();
    for (Pattern p : {Pattern::DoubleSided, Pattern::MultiSided32}) {
        sim::ActHarnessConfig cfg;
        cfg.timing = timing;
        cfg.flipTh = 6250;
        sim::ActHarness harness(cfg, nullptr);
        Rng rng(1);
        harness.run(dram::maxActsPerWindow(timing) / 2,
                    [&](std::uint64_t i) {
                        return patternRow(p, i, rng);
                    });
        EXPECT_GT(harness.oracle().bitFlips(), 0u) << patternName(p);
    }
}

} // namespace
} // namespace mithril
