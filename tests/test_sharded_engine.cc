/**
 * @file
 * ShardedActStreamEngine equivalence and determinism tests.
 *
 * The centrepiece mirrors the engine's golden suite one level up: for
 * EVERY registered scheme, the sharded engine at shards in
 * {1, 2, 4, banks} — inline and on thread pools of several sizes —
 * must agree byte-for-byte with the single-threaded ActStreamEngine
 * on aggregate counters, every per-bank counter and clock, the
 * ground-truth oracle, and the tracker's logic-op count. This is what
 * licenses running all engine sweeps sharded, and it covers PARA's
 * and PARFM's per-bank derived-seed path explicitly (a shared RNG
 * would diverge the moment banks run on different shards).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <tuple>
#include <vector>

#include "engine/sharded_engine.hh"
#include "engine/sources.hh"
#include "registry/scheme_registry.hh"
#include "registry/source_registry.hh"
#include "runner/thread_pool.hh"
#include "trackers/graphene.hh"

namespace mithril
{
namespace
{

constexpr std::uint32_t kBanks = 16;
constexpr std::uint32_t kFlipTh = 3125;
constexpr std::uint64_t kActs = 120000;

dram::Geometry
testGeometry()
{
    dram::Geometry geom = dram::paperGeometry();
    geom.channels = 1;
    geom.ranksPerChannel = 1;
    geom.banksPerRank = kBanks;
    return geom;
}

engine::EngineConfig
testEngineConfig()
{
    engine::EngineConfig cfg;
    cfg.timing = dram::ddr5_4800();
    cfg.geometry = testGeometry();
    cfg.flipTh = kFlipTh;
    return cfg;
}

std::unique_ptr<trackers::RhProtection>
makeTracker(const std::string &scheme)
{
    registry::SchemeKnobs knobs;
    knobs.flipTh = kFlipTh;
    return registry::makeScheme(scheme, knobs.toParams(),
                                {dram::ddr5_4800(), testGeometry()});
}

std::unique_ptr<engine::ActSource>
makeAttackStream(const std::string &attack = "multi-sided")
{
    ParamSet params;
    params.set("attack", attack);
    return registry::makeActSource(
        "attack", params,
        {dram::ddr5_4800(), testGeometry(), kFlipTh, /*seed=*/7});
}

/** Everything both engines must agree on, byte for byte. */
struct Outcome
{
    std::uint64_t acts = 0, refs = 0, rfms = 0, preventive = 0,
                  stalls = 0;
    double maxDisturbance = 0.0;
    std::uint64_t bitFlips = 0, flippedRows = 0, logicOps = 0;
    std::vector<std::uint64_t> bankActs, bankPrev;
    std::vector<Tick> bankNow;

    bool
    operator==(const Outcome &o) const
    {
        return acts == o.acts && refs == o.refs && rfms == o.rfms &&
               preventive == o.preventive && stalls == o.stalls &&
               maxDisturbance == o.maxDisturbance &&
               bitFlips == o.bitFlips &&
               flippedRows == o.flippedRows &&
               logicOps == o.logicOps && bankActs == o.bankActs &&
               bankPrev == o.bankPrev && bankNow == o.bankNow;
    }
};

std::ostream &
operator<<(std::ostream &os, const Outcome &o)
{
    return os << "acts=" << o.acts << " refs=" << o.refs
              << " rfms=" << o.rfms << " prev=" << o.preventive
              << " stalls=" << o.stalls
              << " maxDist=" << o.maxDisturbance
              << " flips=" << o.bitFlips
              << " flippedRows=" << o.flippedRows
              << " logicOps=" << o.logicOps;
}

Outcome
runSingle(const std::string &scheme, bool honor_throttle = false,
          const std::string &attack = "multi-sided")
{
    auto tracker = makeTracker(scheme);
    engine::EngineConfig cfg = testEngineConfig();
    cfg.honorThrottle = honor_throttle;
    engine::ActStreamEngine eng(cfg, tracker.get());
    auto source = makeAttackStream(attack);
    eng.run(*source, kActs);

    Outcome o;
    o.acts = eng.acts();
    o.refs = eng.refs();
    o.rfms = eng.rfms();
    o.preventive = eng.preventiveRefreshes();
    o.stalls = eng.throttleStalls();
    o.maxDisturbance = eng.oracle().maxDisturbanceEver();
    o.bitFlips = eng.oracle().bitFlips();
    o.flippedRows = eng.oracle().flippedRows();
    o.logicOps = tracker ? tracker->logicOps() : 0;
    for (BankId b = 0; b < kBanks; ++b) {
        o.bankActs.push_back(eng.actsAt(b));
        o.bankPrev.push_back(eng.preventiveRefreshesAt(b));
        o.bankNow.push_back(eng.now(b));
    }
    return o;
}

Outcome
runSharded(const std::string &scheme, std::uint32_t shards,
           runner::ThreadPool *pool = nullptr,
           bool honor_throttle = false,
           const std::string &attack = "multi-sided")
{
    engine::ShardedEngineConfig cfg;
    cfg.engine = testEngineConfig();
    cfg.engine.honorThrottle = honor_throttle;
    cfg.shards = shards;
    cfg.pool = pool;
    engine::ShardedActStreamEngine eng(
        cfg, [&] { return makeTracker(scheme); });
    eng.run([&] { return makeAttackStream(attack); }, kActs);

    Outcome o;
    o.acts = eng.acts();
    o.refs = eng.refs();
    o.rfms = eng.rfms();
    o.preventive = eng.preventiveRefreshes();
    o.stalls = eng.throttleStalls();
    o.maxDisturbance = eng.maxDisturbanceEver();
    o.bitFlips = eng.bitFlips();
    o.flippedRows = eng.flippedRows();
    o.logicOps = eng.logicOps();
    for (BankId b = 0; b < kBanks; ++b) {
        o.bankActs.push_back(eng.actsAt(b));
        o.bankPrev.push_back(eng.preventiveRefreshesAt(b));
        o.bankNow.push_back(eng.now(b));
    }
    return o;
}

class ShardedEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ShardedEquivalence, ShardCountNeverChangesResults)
{
    const std::string scheme = GetParam();
    const Outcome single = runSingle(scheme);
    EXPECT_EQ(single.acts, kActs) << scheme;

    for (std::uint32_t shards : {1u, 2u, 4u, kBanks}) {
        const Outcome sharded = runSharded(scheme, shards);
        EXPECT_TRUE(sharded == single)
            << scheme << " shards=" << shards
            << "\n  sharded: " << sharded
            << "\n  single:  " << single;
    }
}

TEST_P(ShardedEquivalence, PoolSizeNeverChangesResults)
{
    const std::string scheme = GetParam();
    const Outcome inline_run = runSharded(scheme, 4);
    for (unsigned threads : {1u, 2u, 5u}) {
        runner::ThreadPool pool(threads);
        const Outcome pooled = runSharded(scheme, 4, &pool);
        EXPECT_TRUE(pooled == inline_run)
            << scheme << " threads=" << threads
            << "\n  pooled: " << pooled
            << "\n  inline: " << inline_run;
    }
}

std::vector<std::string>
allSchemes()
{
    return registry::schemeRegistry().names();
}

std::string
schemeCaseName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string s = info.param;
    for (auto &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredSchemes, ShardedEquivalence,
                         ::testing::ValuesIn(allSchemes()),
                         schemeCaseName);

// ------------------------------------------------ targeted checks

TEST(ShardedEngine, ParaDerivedSeedsAreRunToRunDeterministic)
{
    // Two identical sharded runs of the probabilistic scheme must be
    // bit-equal (no wall-clock or address-based seeding anywhere),
    // and a different base seed must actually change the draws.
    const Outcome a = runSharded("para", 4);
    const Outcome b = runSharded("para", 4);
    EXPECT_TRUE(a == b) << "\n  a: " << a << "\n  b: " << b;
    EXPECT_GT(a.preventive, 0u);
}

TEST(ShardedEngine, ThrottledBlockHammerShardsExactly)
{
    runner::ThreadPool pool(3);
    const Outcome single =
        runSingle("blockhammer", true, "double-sided");
    const Outcome sharded = runSharded("blockhammer", 4, &pool, true,
                                       "double-sided");
    EXPECT_TRUE(sharded == single)
        << "\n  sharded: " << sharded << "\n  single:  " << single;
    EXPECT_GT(single.stalls, 0u);
}

TEST(ShardedEngine, MergeTrackerStatsReducesCrossBankCounters)
{
    // Graphene's ARR count lives in the tracker, not the engine: the
    // per-shard instances must fold into exactly the single-tracker
    // total through the mergeStatsFrom() join protocol.
    auto single_tracker = makeTracker("graphene");
    {
        engine::ActStreamEngine eng(testEngineConfig(),
                                    single_tracker.get());
        auto source = makeAttackStream("double-sided");
        eng.run(*source, kActs);
    }
    const auto &single =
        dynamic_cast<const trackers::Graphene &>(*single_tracker);
    ASSERT_GT(single.arrCount(), 0u);

    engine::ShardedEngineConfig cfg;
    cfg.engine = testEngineConfig();
    cfg.shards = 4;
    engine::ShardedActStreamEngine eng(
        cfg, [] { return makeTracker("graphene"); });
    eng.run([] { return makeAttackStream("double-sided"); }, kActs);

    auto merged = makeTracker("graphene");
    eng.mergeTrackerStatsInto(*merged);
    const auto &m =
        dynamic_cast<const trackers::Graphene &>(*merged);
    EXPECT_EQ(m.arrCount(), single.arrCount());
    EXPECT_EQ(merged->logicOps(), single_tracker->logicOps());
}

TEST(ShardedEngine, ReusesAmbientPoolInsideSweepWorkers)
{
    // A sharded run issued from inside a pool task (a sweep job that
    // shards its own work) must reuse that pool through
    // ThreadPool::current() — the helping parallelFor makes this safe
    // — and still produce the exact single-threaded result.
    const Outcome expected = runSharded("mithril", 4);
    runner::ThreadPool pool(2);
    std::vector<Outcome> got(3);
    pool.parallelFor(got.size(), [&](std::size_t i) {
        ASSERT_EQ(runner::ThreadPool::current(), &pool);
        got[i] = runSharded("mithril", 4);  // cfg.pool = nullptr.
    });
    for (const Outcome &o : got)
        EXPECT_TRUE(o == expected)
            << "\n  got:      " << o << "\n  expected: " << expected;
}

TEST(BankFilterSource, SlicesPartitionTheBoundedPrefix)
{
    // Two complementary slices of the same stream must together carry
    // exactly the first `budget` records, each bank only on its side.
    auto make_stream = [] {
        return std::make_unique<engine::CallbackSource>(
            /*count=*/~0ull,
            [](std::uint64_t i) {
                return static_cast<RowId>(1000 + i % 7);
            });
    };
    // CallbackSource emits bank 0 only: the low slice sees all
    // records, the high slice none — and both stop at the budget.
    engine::BankFilterSource low(make_stream(), 0, 8, 5000);
    engine::BankFilterSource high(make_stream(), 8, 16, 5000);

    engine::ActBatch batch;
    std::uint64_t low_total = 0;
    while (std::size_t n = low.fill(batch, 4096)) {
        low_total += n;
        batch.clear();
    }
    std::uint64_t high_total = 0;
    while (std::size_t n = high.fill(batch, 4096)) {
        high_total += n;
        batch.clear();
    }
    EXPECT_EQ(low_total, 5000u);
    EXPECT_EQ(high_total, 0u);
}

TEST(ShardedEngine, ShardRangesPartitionBanks)
{
    engine::ShardedEngineConfig cfg;
    cfg.engine = testEngineConfig();
    for (std::uint32_t shards : {1u, 3u, 5u, kBanks, kBanks + 9}) {
        cfg.shards = shards;
        engine::ShardedActStreamEngine eng(cfg, nullptr);
        BankId next = 0;
        for (std::uint32_t s = 0; s < eng.shardCount(); ++s) {
            const auto [lo, hi] = eng.shardRange(s);
            EXPECT_EQ(lo, next);
            EXPECT_GT(hi, lo);
            next = hi;
        }
        EXPECT_EQ(next, kBanks);
        for (BankId b = 0; b < kBanks; ++b) {
            const auto [lo, hi] = eng.shardRange(eng.shardFor(b));
            EXPECT_TRUE(b >= lo && b < hi) << "bank " << b;
        }
    }
}

} // namespace
} // namespace mithril
