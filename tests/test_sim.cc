/**
 * @file
 * Tests for the simulation layer: event queue ordering, the ACT-level
 * harness, and full-system integration runs for every scheme.
 */

#include <gtest/gtest.h>

#include "core/mithril.hh"
#include "sim/act_harness.hh"
#include "sim/event_queue.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/attacks.hh"
#include "workload/spec_like.hh"

namespace mithril::sim
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&](Tick) { order.push_back(3); });
    q.schedule(10, [&](Tick) { order.push_back(1); });
    q.schedule(20, [&](Tick) { order.push_back(2); });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(100, [&order, i](Tick) { order.push_back(i); });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&](Tick t) {
        ++fired;
        q.schedule(t + 1, [&](Tick) { ++fired; });
    });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 2);
    EXPECT_EQ(q.nextTime(), kTickMax);
}

TEST(ActHarness, RefreshCadenceMatchesTrefi)
{
    ActHarnessConfig cfg;
    cfg.timing = dram::ddr5_4800();
    cfg.flipTh = 1u << 30;
    ActHarness harness(cfg, nullptr);
    // Enough ACTs to span ~10 tREFI.
    const auto acts = static_cast<std::uint64_t>(
        10.0 * static_cast<double>(cfg.timing.tREFI) /
        static_cast<double>(cfg.timing.tRC));
    harness.run(acts, [](std::uint64_t i) {
        return static_cast<RowId>(i % 100);
    });
    EXPECT_NEAR(static_cast<double>(harness.refs()), 10.0, 2.0);
    EXPECT_EQ(harness.acts(), acts);
}

TEST(ActHarness, RfmCadenceMatchesTracker)
{
    core::MithrilParams mp;
    mp.nEntry = 32;
    mp.rfmTh = 64;
    core::Mithril tracker(1, mp);

    ActHarnessConfig cfg;
    cfg.timing = dram::ddr5_4800();
    cfg.flipTh = 1u << 30;
    ActHarness harness(cfg, &tracker);
    harness.run(6400, [](std::uint64_t i) {
        return static_cast<RowId>(i % 7);
    });
    EXPECT_EQ(harness.rfms(), 100u);
    EXPECT_EQ(harness.preventiveRefreshes(), 100u);
}

TEST(ActHarness, UnprotectedHammerFlipsBits)
{
    ActHarnessConfig cfg;
    cfg.timing = dram::ddr5_4800();
    cfg.flipTh = 5000;
    ActHarness harness(cfg, nullptr);
    harness.run(20000, [](std::uint64_t i) {
        return 1000 + 2 * static_cast<RowId>(i % 2);
    });
    EXPECT_GT(harness.oracle().bitFlips(), 0u);
    EXPECT_GE(harness.oracle().maxDisturbanceEver(), 5000.0);
}

// ----------------------------------------------------- System runs

ExperimentSpec
smallRun(const std::string &scheme)
{
    ExperimentSpec spec;
    spec.scheme = scheme;
    spec.workload = "mix-high";
    spec.flipTh = 6250;
    spec.cores = 4;
    spec.instrPerCore = 20000;
    return spec;
}

TEST(SystemIntegration, BaselineRunProducesTraffic)
{
    const RunMetrics m = runExperiment(smallRun("none"));
    EXPECT_GT(m.aggIpc, 0.0);
    EXPECT_GT(m.acts, 0u);
    EXPECT_GT(m.reads, 0u);
    EXPECT_GT(m.energyPj, 0.0);
    EXPECT_EQ(m.rfmIssued, 0u);
    EXPECT_EQ(m.bitFlips, 0u);
}

TEST(SystemIntegration, DeterministicAcrossRuns)
{
    const RunMetrics a = runExperiment(smallRun("mithril"));
    const RunMetrics b = runExperiment(smallRun("mithril"));
    EXPECT_DOUBLE_EQ(a.aggIpc, b.aggIpc);
    EXPECT_EQ(a.acts, b.acts);
    EXPECT_EQ(a.simTicks, b.simTicks);
}

class SystemSchemes : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SystemSchemes, RunsCleanlyWithModestOverhead)
{
    const RunMetrics base = runExperiment(smallRun("none"));
    const RunMetrics m = runExperiment(smallRun(GetParam()));

    EXPECT_GT(m.aggIpc, 0.0);
    const double rel = relativePerf(m, base);
    EXPECT_GT(rel, 70.0) << GetParam();
    EXPECT_LT(rel, 115.0) << GetParam();
    EXPECT_EQ(m.bitFlips, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SystemSchemes,
    ::testing::Values("mithril", "mithril+", "parfm", "blockhammer",
                      "para", "graphene", "twice", "cbt"));

TEST(SystemIntegration, MithrilIssuesRfmUnderAttack)
{
    ExperimentSpec spec = smallRun("mithril");
    spec.attack = "double-sided";
    spec.instrPerCore = 100000;
    spec.rfmTh = 32;  // Short run: keep the RAA epoch small.
    const RunMetrics m = runExperiment(spec);
    EXPECT_GT(m.rfmIssued, 0u);
    EXPECT_EQ(m.bitFlips, 0u);
}

TEST(SystemIntegration, MithrilPlusSkipsRfmOnBenignWork)
{
    ExperimentSpec spec = smallRun("mithril+");
    spec.instrPerCore = 100000;
    spec.rfmTh = 16;  // Short run: keep the RAA epoch small.
    const RunMetrics m = runExperiment(spec);
    // Benign traffic: most RAA epochs end in an MRR skip.
    EXPECT_GT(m.rfmSkippedMrr, 0u);
    EXPECT_GT(m.rfmSkippedMrr, m.rfmIssued);
}

TEST(SystemIntegration, BlockHammerThrottlesAttacker)
{
    ExperimentSpec spec = smallRun("blockhammer");
    spec.attack = "double-sided";
    // One benign core and a long budget: the attacker needs ~50us of
    // hammering for its pair to cross the blacklist threshold.
    spec.cores = 2;
    spec.instrPerCore = 600000;
    // Low FlipTH -> low NBL (490).
    spec.flipTh = 1500;
    const RunMetrics m = runExperiment(spec);
    EXPECT_GT(m.throttleStalls, 0u);
}

TEST(SystemIntegration, UnprotectedLongAttackFlipsBits)
{
    // Horizon-bound attack-only run: without protection the oracle
    // must observe flips within a fraction of tREFW.
    SystemConfig cfg;
    cfg.flipTh = 2000;
    cfg.horizon = msToTick(2.0);
    System system(cfg, nullptr);

    mc::AddressMap map(cfg.geometry);
    workload::AttackTarget target;
    target.map = &map;
    target.bank = 3;
    cpu::CoreParams params;
    params.instrBudget = ~0ull;
    params.excluded = true;
    system.addCore(params,
                   std::make_unique<workload::DoubleSidedAttack>(
                       target));
    system.run();
    EXPECT_GT(system.bitFlips(), 0u);
}

TEST(SystemIntegration, ExportStatsCoversComponents)
{
    SystemConfig cfg;
    cfg.flipTh = 6250;
    System system(cfg, nullptr);
    cpu::CoreParams params;
    params.instrBudget = 5000;
    system.addCore(params,
                   makeWorkloadThread(WorkloadKind::MixHigh, 0, 1, 1));
    system.run();

    StatRegistry registry;
    system.exportStats(registry);
    EXPECT_GT(registry.counterValue("mc.reads"), 0u);
    EXPECT_GT(registry.counterValue("dram.acts"), 0u);
    EXPECT_GT(registry.counterValue("cache.misses"), 0u);
    EXPECT_GT(registry.counterValue("core0.instructions"), 4999u);
    EXPECT_EQ(registry.counterValue("rh.bitFlips"), 0u);
    EXPECT_NE(registry.dump().find("mc.activates"),
              std::string::npos);
}

TEST(SystemIntegration, EnergyOverheadHelpers)
{
    RunMetrics base, value;
    base.aggIpc = 10.0;
    base.energyPj = 100.0;
    value.aggIpc = 9.5;
    value.energyPj = 104.0;
    EXPECT_DOUBLE_EQ(relativePerf(value, base), 95.0);
    EXPECT_DOUBLE_EQ(energyOverheadPct(value, base), 4.0);
}

} // namespace
} // namespace mithril::sim
