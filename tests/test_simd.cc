/**
 * @file
 * Differential suite pinning every SIMD kernel byte-identical to its
 * scalar reference, at every dispatch tier this build and CPU support.
 *
 * The contract under test (common/simd.hh): vector code only ever
 * changes how a result is computed, never what it is. Each section
 * iterates setLevelForTest() over scalar/sse2/avx2 and compares the
 * dispatching kernel against the pinned `*Scalar` reference across
 * sizes 0..130 and 4096, misaligned heads/tails, and adversarial
 * mismatch positions. On top of the raw kernels, the suite pins the
 * structures built from them: CbsTable::touchRun (including the
 * segment-bulk path) against a touch() loop, and whole-engine
 * outcomes across SIMD tiers at shard counts {1, 2, 4, 16}. The
 * cache-line padding guarantees the sharded engine relies on are
 * checked here too.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/simd.hh"
#include "core/cbs_table.hh"
#include "engine/act_stream_engine.hh"
#include "engine/sharded_engine.hh"
#include "registry/scheme_registry.hh"
#include "registry/source_registry.hh"

namespace mithril
{
namespace
{

/** Every tier the running CPU supports (always includes Scalar). */
std::vector<simd::Level>
supportedLevels()
{
    std::vector<simd::Level> levels = {simd::Level::Scalar};
    if (simd::maxLevel() >= simd::Level::Sse2)
        levels.push_back(simd::Level::Sse2);
    if (simd::maxLevel() >= simd::Level::Avx2)
        levels.push_back(simd::Level::Avx2);
    return levels;
}

/** Restore the dispatch tier when a test scope ends. */
struct ScopedLevel
{
    simd::Level saved;

    explicit ScopedLevel(simd::Level level)
        : saved(simd::activeLevel())
    {
        simd::setLevelForTest(level);
    }

    ~ScopedLevel() { simd::setLevelForTest(saved); }
};

// ------------------------------------------------------------ U64Divisor

TEST(U64Divisor, MatchesHardwareDivModEverywhere)
{
    std::vector<std::uint64_t> divisors;
    for (std::uint64_t d = 1; d <= 4096; ++d)
        divisors.push_back(d);
    for (std::uint32_t k = 1; k < 64; ++k) {
        const std::uint64_t p = 1ull << k;
        divisors.push_back(p);
        divisors.push_back(p - 1);
        divisors.push_back(p + 1);
    }
    Rng rng(0xd1b1d3ull);
    for (int i = 0; i < 64; ++i)
        divisors.push_back(rng.next() | 1);

    for (const std::uint64_t d : divisors) {
        const simd::U64Divisor div(d);
        std::vector<std::uint64_t> xs = {0,     1,      d - 1, d,
                                         d + 1, 2 * d, ~0ull, ~0ull - 1};
        for (int i = 0; i < 64; ++i)
            xs.push_back(rng.next());
        for (const std::uint64_t x : xs) {
            ASSERT_EQ(div.div(x), x / d) << "x=" << x << " d=" << d;
            ASSERT_EQ(div.mod(x), x % d) << "x=" << x << " d=" << d;
        }
    }
}

// --------------------------------------------------- prefix/count kernels

/** Sizes exercising every head/body/tail split of the vector loops. */
std::vector<std::size_t>
kernelSizes()
{
    std::vector<std::size_t> sizes;
    for (std::size_t n = 0; n <= 130; ++n)
        sizes.push_back(n);
    sizes.push_back(4096);
    return sizes;
}

TEST(SimdKernels, UniformPrefixMatchesScalarAtEveryLevel)
{
    constexpr std::uint32_t kX = 0xabcd1234u;
    for (const simd::Level level : supportedLevels()) {
        ScopedLevel scoped(level);
        for (const std::size_t n : kernelSizes()) {
            // Misaligned heads: offset the window into the buffer.
            for (std::size_t off = 0; off < 4; ++off) {
                std::vector<std::uint32_t> buf(off + n + 8, kX);
                const std::uint32_t *v = buf.data() + off;
                ASSERT_EQ(simd::uniformPrefix(v, n, kX),
                          simd::uniformPrefixScalar(v, n, kX))
                    << "all-match n=" << n << " off=" << off;
                // A mismatch at every possible position.
                for (std::size_t miss = 0; miss < n;
                     miss += (n > 40 ? 7 : 1)) {
                    buf[off + miss] = kX + 1;
                    ASSERT_EQ(simd::uniformPrefix(v, n, kX),
                              simd::uniformPrefixScalar(v, n, kX))
                        << "miss=" << miss << " n=" << n;
                    ASSERT_EQ(simd::uniformPrefix(v, n, kX), miss);
                    buf[off + miss] = kX;
                }
            }
        }
    }
}

TEST(SimdKernels, PairMatchPrefixMatchesScalarAtEveryLevel)
{
    constexpr std::uint32_t kA = 7u, kB = 0xffff0000u;
    Rng rng(0x9a12);
    for (const simd::Level level : supportedLevels()) {
        ScopedLevel scoped(level);
        for (const std::size_t n : kernelSizes()) {
            for (std::size_t off = 0; off < 4; ++off) {
                std::vector<std::uint32_t> buf(off + n + 8);
                for (auto &x : buf)
                    x = (rng.next() & 1) ? kA : kB;
                const std::uint32_t *v = buf.data() + off;
                ASSERT_EQ(simd::pairMatchPrefix(v, n, kA, kB),
                          simd::pairMatchPrefixScalar(v, n, kA, kB));
                ASSERT_EQ(simd::pairMatchPrefix(v, n, kA, kB), n);
                for (std::size_t miss = 0; miss < n;
                     miss += (n > 40 ? 7 : 1)) {
                    const std::uint32_t old = buf[off + miss];
                    buf[off + miss] = kA ^ kB;  // neither way
                    ASSERT_EQ(
                        simd::pairMatchPrefix(v, n, kA, kB),
                        simd::pairMatchPrefixScalar(v, n, kA, kB));
                    ASSERT_EQ(simd::pairMatchPrefix(v, n, kA, kB),
                              miss);
                    buf[off + miss] = old;
                }
            }
        }
    }
}

TEST(SimdKernels, CountMatchesMatchesScalarAtEveryLevel)
{
    constexpr std::uint32_t kX = 42u;
    Rng rng(0xc0de);
    for (const simd::Level level : supportedLevels()) {
        ScopedLevel scoped(level);
        for (const std::size_t n : kernelSizes()) {
            for (std::size_t off = 0; off < 4; ++off) {
                std::vector<std::uint32_t> buf(off + n + 8);
                std::size_t expected = 0;
                for (std::size_t i = 0; i < n; ++i) {
                    const bool match = rng.next() & 1;
                    buf[off + i] = match ? kX : kX + 1 + (i & 7);
                    expected += match;
                }
                const std::uint32_t *v = buf.data() + off;
                ASSERT_EQ(simd::countMatches(v, n, kX),
                          simd::countMatchesScalar(v, n, kX));
                ASSERT_EQ(simd::countMatches(v, n, kX), expected)
                    << "n=" << n << " off=" << off;
            }
        }
    }
}

// ----------------------------------------------------------- bloom hash

TEST(SimdKernels, BloomHashRowsMatchesScalarAndFormula)
{
    constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;
    const std::uint64_t seed = 0xfeedface;
    Rng rng(0xb100f);
    for (const std::uint32_t hashes : {1u, 2u, 4u, 5u}) {
        for (const std::uint64_t size : {17ull, 1024ull, 16384ull}) {
            const simd::U64Divisor div(size);
            for (const std::size_t n :
                 {std::size_t{0}, std::size_t{1}, std::size_t{7},
                  std::size_t{64}, std::size_t{257}}) {
                std::vector<RowId> rows(n);
                for (auto &r : rows)
                    r = static_cast<RowId>(rng.next());

                std::vector<std::uint32_t> ref(n * hashes + 1,
                                               0xdeadu);
                simd::bloomHashRowsScalar(rows.data(), n, seed,
                                          hashes, div, ref.data());
                // The scalar reference IS the historical formula.
                for (std::size_t i = 0; i < n; ++i)
                    for (std::uint32_t h = 0; h < hashes; ++h)
                        ASSERT_EQ(
                            ref[i * hashes + h],
                            simd::mix64(rows[i] + seed +
                                        kGolden * (h + 1)) %
                                size);

                for (const simd::Level level : supportedLevels()) {
                    ScopedLevel scoped(level);
                    std::vector<std::uint32_t> out(n * hashes + 1,
                                                   0xbeefu);
                    simd::bloomHashRows(rows.data(), n, seed, hashes,
                                        div, out.data());
                    out.back() = ref.back() = 0;
                    ASSERT_EQ(out, ref)
                        << "level=" << simd::levelName(level)
                        << " hashes=" << hashes << " size=" << size;
                }
            }
        }
    }
}

// ------------------------------------------------- CbsTable::touchRun

/** Reference semantics: touch() one row at a time, honouring the
 *  divisor stop exactly as documented on touchRun(). */
std::size_t
touchLoopReference(core::CbsTable &t, const RowId *rows, std::size_t n,
                   std::uint64_t divisor, bool *hit)
{
    *hit = false;
    std::size_t i = 0;
    while (i < n) {
        const std::uint64_t est = t.touch(rows[i]);
        ++i;
        if (divisor != 0 && est % divisor == 0) {
            *hit = true;
            break;
        }
    }
    return i;
}

/** Full observable state, including intra-bucket head order: drain
 *  the table with resetMaxToMin(), which reads each bucket's head. */
struct TableFingerprint
{
    std::vector<core::CbsTable::Entry> entries;
    std::vector<RowId> drainOrder;
    std::uint64_t touches, inserts, evictions;

    bool
    operator==(const TableFingerprint &o) const
    {
        auto same = [](const core::CbsTable::Entry &a,
                       const core::CbsTable::Entry &b) {
            return a.row == b.row && a.count == b.count;
        };
        return touches == o.touches && inserts == o.inserts &&
               evictions == o.evictions &&
               drainOrder == o.drainOrder &&
               std::equal(entries.begin(), entries.end(),
                          o.entries.begin(), o.entries.end(), same);
    }
};

TableFingerprint
fingerprint(core::CbsTable &t)
{
    TableFingerprint fp;
    fp.entries = t.entries();
    std::sort(fp.entries.begin(), fp.entries.end(),
              [](const auto &a, const auto &b) {
                  return a.row < b.row;
              });
    fp.touches = t.touches();
    fp.inserts = t.inserts();
    fp.evictions = t.evictions();
    // maxRow() is the head of the max bucket; resetMaxToMin() then
    // reshuffles it downward. Interleaving the two while counts drain
    // observes the head order of every bucket the walk passes.
    for (int i = 0; i < 64; ++i) {
        fp.drainOrder.push_back(t.maxRow());
        if (t.resetMaxToMin() == kInvalidRow)
            break;
    }
    return fp;
}

TEST(CbsTouchRun, MatchesTouchLoopAtEveryLevelAndDivisor)
{
    // Streams chosen to exercise every touchRun path: long uniform
    // and alternating-pair runs (the bulk path), way misses and
    // evictions (capacity pressure), and short segments.
    Rng rng(0x7ab1e);
    std::vector<std::vector<RowId>> streams;
    {
        std::vector<RowId> s;  // double-sided hammer, bulk heavy
        for (int i = 0; i < 3000; ++i)
            s.push_back(2000 + 2 * (i & 1));
        streams.push_back(s);
    }
    {
        std::vector<RowId> s;  // long uniform runs with row changes
        for (int r = 0; r < 24; ++r)
            for (int i = 0; i < 100 + r; ++i)
                s.push_back(100 + r);
        streams.push_back(s);
    }
    {
        std::vector<RowId> s;  // eviction churn: universe >> capacity
        for (int i = 0; i < 4000; ++i)
            s.push_back(static_cast<RowId>(rng.nextBounded(40)));
        streams.push_back(s);
    }
    {
        std::vector<RowId> s;  // mixed: bursts of pairs, then churn
        for (int b = 0; b < 40; ++b) {
            const RowId r0 = static_cast<RowId>(rng.nextBounded(64));
            const RowId r1 = static_cast<RowId>(rng.nextBounded(64));
            for (int i = 0; i < 1 + static_cast<int>(
                                    rng.nextBounded(70));
                 ++i)
                s.push_back((i & 1) ? r1 : r0);
        }
        streams.push_back(s);
    }

    for (const std::uint64_t divisor : {0ull, 1ull, 3ull, 7ull}) {
        for (std::size_t si = 0; si < streams.size(); ++si) {
            const auto &stream = streams[si];
            core::CbsTable ref(16);
            std::vector<std::pair<std::size_t, bool>> refStops;
            {
                std::size_t pos = 0;
                while (pos < stream.size()) {
                    bool hit = false;
                    pos += touchLoopReference(
                        ref, stream.data() + pos,
                        stream.size() - pos, divisor, &hit);
                    refStops.emplace_back(pos, hit);
                }
            }
            const TableFingerprint want = fingerprint(ref);

            for (const simd::Level level : supportedLevels()) {
                ScopedLevel scoped(level);
                core::CbsTable t(16);
                std::vector<std::pair<std::size_t, bool>> stops;
                std::size_t pos = 0;
                while (pos < stream.size()) {
                    bool hit = false;
                    pos += t.touchRun(stream.data() + pos,
                                      stream.size() - pos, divisor,
                                      &hit);
                    stops.emplace_back(pos, hit);
                    ASSERT_TRUE(t.checkInvariants())
                        << "level=" << simd::levelName(level)
                        << " divisor=" << divisor << " pos=" << pos;
                }
                ASSERT_EQ(stops, refStops)
                    << "stream=" << si << " divisor=" << divisor
                    << " level=" << simd::levelName(level);
                ASSERT_TRUE(fingerprint(t) == want)
                    << "stream=" << si << " divisor=" << divisor
                    << " level=" << simd::levelName(level);
            }
        }
    }
}

// -------------------------------------------- engine-level equivalence

constexpr std::uint32_t kBanks = 16;
constexpr std::uint32_t kFlipTh = 3125;
constexpr std::uint64_t kActs = 60000;

engine::EngineConfig
testEngineConfig()
{
    dram::Geometry geom = dram::paperGeometry();
    geom.channels = 1;
    geom.ranksPerChannel = 1;
    geom.banksPerRank = kBanks;
    engine::EngineConfig cfg;
    cfg.timing = dram::ddr5_4800();
    cfg.geometry = geom;
    cfg.flipTh = kFlipTh;
    return cfg;
}

struct EngineOutcome
{
    std::uint64_t acts = 0, refs = 0, preventive = 0, logicOps = 0,
                  flips = 0;
    std::vector<std::uint64_t> bankActs;

    bool
    operator==(const EngineOutcome &o) const
    {
        return acts == o.acts && refs == o.refs &&
               preventive == o.preventive &&
               logicOps == o.logicOps && flips == o.flips &&
               bankActs == o.bankActs;
    }
};

EngineOutcome
runScheme(const std::string &scheme, std::uint32_t shards)
{
    const engine::EngineConfig ecfg = testEngineConfig();
    auto makeTracker = [&] {
        registry::SchemeKnobs knobs;
        knobs.flipTh = kFlipTh;
        return registry::makeScheme(scheme, knobs.toParams(),
                                    {ecfg.timing, ecfg.geometry});
    };
    auto makeSource = [&] {
        ParamSet params;
        params.set("attack", "multi-sided");
        return registry::makeActSource(
            "attack", params,
            {ecfg.timing, ecfg.geometry, kFlipTh, /*seed=*/7});
    };

    engine::ShardedEngineConfig cfg;
    cfg.engine = ecfg;
    cfg.shards = shards;
    engine::ShardedActStreamEngine eng(cfg, makeTracker);
    eng.run(makeSource, kActs);

    EngineOutcome o;
    o.acts = eng.acts();
    o.refs = eng.refs();
    o.preventive = eng.preventiveRefreshes();
    o.logicOps = eng.logicOps();
    o.flips = eng.bitFlips();
    for (BankId b = 0; b < kBanks; ++b)
        o.bankActs.push_back(eng.actsAt(b));
    return o;
}

TEST(SimdEngine, OutcomeIdenticalAcrossLevelsAndShards)
{
    // The schemes whose batch paths dispatch on the SIMD level.
    for (const std::string scheme :
         {"mithril", "graphene", "rfm-graphene", "blockhammer",
          "cbt"}) {
        for (const std::uint32_t shards : {1u, 2u, 4u, kBanks}) {
            EngineOutcome scalarOutcome;
            {
                ScopedLevel scoped(simd::Level::Scalar);
                scalarOutcome = runScheme(scheme, shards);
            }
            EXPECT_EQ(scalarOutcome.acts, kActs) << scheme;
            for (const simd::Level level : supportedLevels()) {
                if (level == simd::Level::Scalar)
                    continue;
                ScopedLevel scoped(level);
                const EngineOutcome o = runScheme(scheme, shards);
                EXPECT_TRUE(o == scalarOutcome)
                    << scheme << " shards=" << shards
                    << " level=" << simd::levelName(level);
            }
        }
    }
}

// ----------------------------------------------------- padding checks

TEST(Padding, CbsTableHotStateIsCacheLineAligned)
{
    for (const std::uint32_t n : {1u, 4u, 32u, 512u, 1000u}) {
        core::CbsTable t(n);
        EXPECT_TRUE(t.hotStateCacheAligned()) << "entries=" << n;
    }
}

TEST(Padding, ShardSlotsNeverShareACacheLine)
{
    const engine::EngineConfig ecfg = testEngineConfig();
    for (const std::uint32_t shards : {1u, 2u, 4u, kBanks}) {
        engine::ShardedEngineConfig cfg;
        cfg.engine = ecfg;
        cfg.shards = shards;
        engine::ShardedActStreamEngine eng(cfg, [&] {
            registry::SchemeKnobs knobs;
            knobs.flipTh = kFlipTh;
            return registry::makeScheme(
                "mithril", knobs.toParams(),
                {ecfg.timing, ecfg.geometry});
        });
        EXPECT_TRUE(eng.shardSlotsCacheAligned())
            << "shards=" << shards;
    }
}

} // namespace
} // namespace mithril
