/**
 * @file
 * Telemetry subsystem tests: merge algebra of the stat primitives
 * (Average, StatRegistry, Histogram, MetricSheet), mitigation-event
 * ring semantics, heatmap coarsening, Chrome trace export shape —
 * and the two contracts the subsystem lives or dies by:
 *
 *  1. Observation only: enabling every collector changes NOTHING
 *     about the simulated outcome, for every registered scheme.
 *  2. Shard invariance: the merged metric sheet, the merged event
 *     stream, and the serialized Chrome trace are byte-identical at
 *     any shard count and any thread-pool size.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/stats.hh"
#include "engine/sharded_engine.hh"
#include "registry/scheme_registry.hh"
#include "registry/source_registry.hh"
#include "runner/thread_pool.hh"
#include "sim/experiment.hh"
#include "telemetry/chrome_trace.hh"
#include "telemetry/telemetry.hh"

namespace mithril
{
namespace
{

constexpr std::uint32_t kBanks = 16;
constexpr std::uint32_t kFlipTh = 3125;
constexpr std::uint64_t kActs = 60000;

dram::Geometry
testGeometry()
{
    dram::Geometry geom = dram::paperGeometry();
    geom.channels = 1;
    geom.ranksPerChannel = 1;
    geom.banksPerRank = kBanks;
    return geom;
}

std::unique_ptr<trackers::RhProtection>
makeTracker(const std::string &scheme)
{
    registry::SchemeKnobs knobs;
    knobs.flipTh = kFlipTh;
    return registry::makeScheme(scheme, knobs.toParams(),
                                {dram::ddr5_4800(), testGeometry()});
}

std::unique_ptr<engine::ActSource>
makeAttackStream()
{
    ParamSet params;
    params.set("attack", "multi-sided");
    return registry::makeActSource(
        "attack", params,
        {dram::ddr5_4800(), testGeometry(), kFlipTh, /*seed=*/7});
}

engine::ShardedEngineConfig
engineConfig(std::uint32_t shards,
             const telemetry::TelemetryConfig &tel = {})
{
    engine::ShardedEngineConfig cfg;
    cfg.engine.timing = dram::ddr5_4800();
    cfg.engine.geometry = testGeometry();
    cfg.engine.flipTh = kFlipTh;
    cfg.shards = shards;
    cfg.telemetry = tel;
    return cfg;
}

telemetry::TelemetryConfig
allOn()
{
    telemetry::TelemetryConfig tel;
    tel.metrics = true;
    tel.events = true;
    tel.eventCapacityPerBank = 256;
    tel.heatmap = true;
    tel.heatmapRegionBudget = 32;
    return tel;
}

/** The simulated outcome a run must not change under observation. */
struct Outcome
{
    std::uint64_t acts = 0, refs = 0, rfms = 0, preventive = 0,
                  stalls = 0;
    double maxDisturbance = 0.0;
    std::uint64_t bitFlips = 0, flippedRows = 0, logicOps = 0;
    std::vector<Tick> bankNow;

    bool
    operator==(const Outcome &o) const
    {
        return acts == o.acts && refs == o.refs && rfms == o.rfms &&
               preventive == o.preventive && stalls == o.stalls &&
               maxDisturbance == o.maxDisturbance &&
               bitFlips == o.bitFlips &&
               flippedRows == o.flippedRows &&
               logicOps == o.logicOps && bankNow == o.bankNow;
    }
};

Outcome
outcomeOf(engine::ShardedActStreamEngine &eng)
{
    Outcome o;
    o.acts = eng.acts();
    o.refs = eng.refs();
    o.rfms = eng.rfms();
    o.preventive = eng.preventiveRefreshes();
    o.stalls = eng.throttleStalls();
    o.maxDisturbance = eng.maxDisturbanceEver();
    o.bitFlips = eng.bitFlips();
    o.flippedRows = eng.flippedRows();
    o.logicOps = eng.logicOps();
    for (BankId b = 0; b < eng.numBanks(); ++b)
        o.bankNow.push_back(eng.now(b));
    return o;
}

/** Flattened sheet rendered to one comparable string. */
std::string
sheetString(telemetry::MetricSheet sheet)
{
    std::ostringstream os;
    for (const auto &[name, value] : sheet.exportFlat())
        os << name << '=' << value << '\n';
    return os.str();
}

std::string
traceString(const std::vector<telemetry::TraceEvent> &events)
{
    std::ostringstream os;
    telemetry::writeChromeTrace(os, events, "test", kBanks);
    return os.str();
}

std::string
schemeCaseName(const testing::TestParamInfo<std::string> &info)
{
    std::string name;
    for (char c : info.param)
        name += std::isalnum(static_cast<unsigned char>(c))
                    ? c
                    : '_';
    return name;
}

// --------------------------------------------------- stat primitives

TEST(AverageMerge, PreservesCountSumMinMax)
{
    Average a, b, all;
    for (double v : {5.0, 1.0, 3.0}) {
        a.sample(v);
        all.sample(v);
    }
    for (double v : {9.0, -2.0}) {
        b.sample(v);
        all.sample(v);
    }
    a.mergeFrom(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
    EXPECT_DOUBLE_EQ(a.minValue(), -2.0);
    EXPECT_DOUBLE_EQ(a.maxValue(), 9.0);
}

TEST(AverageMerge, EmptySideContributesNothing)
{
    // An empty shard's Average must not inject a spurious 0 into the
    // min/max of a populated one — all samples here are > 0.
    Average populated, empty;
    populated.sample(4.0);
    populated.sample(6.0);
    populated.mergeFrom(empty);
    EXPECT_EQ(populated.count(), 2u);
    EXPECT_DOUBLE_EQ(populated.minValue(), 4.0);
    EXPECT_DOUBLE_EQ(populated.maxValue(), 6.0);

    // And merging INTO an empty one adopts the other side verbatim.
    Average fresh;
    fresh.mergeFrom(populated);
    EXPECT_EQ(fresh.count(), 2u);
    EXPECT_DOUBLE_EQ(fresh.minValue(), 4.0);
    EXPECT_DOUBLE_EQ(fresh.maxValue(), 6.0);

    // Both-empty stays empty (mean/min/max report 0 by convention).
    Average e1, e2;
    e1.mergeFrom(e2);
    EXPECT_EQ(e1.count(), 0u);
    EXPECT_DOUBLE_EQ(e1.mean(), 0.0);
}

TEST(AverageMerge, Associative)
{
    const std::vector<std::vector<double>> shards = {
        {1.0, 7.0}, {}, {3.5}, {-1.0, 2.0, 2.0}};
    auto make = [&](std::size_t i) {
        Average avg;
        for (double v : shards[i])
            avg.sample(v);
        return avg;
    };
    // ((0+1)+2)+3 vs 0+((1+2)+3).
    Average left = make(0);
    left.mergeFrom(make(1));
    left.mergeFrom(make(2));
    left.mergeFrom(make(3));
    Average inner = make(1);
    inner.mergeFrom(make(2));
    inner.mergeFrom(make(3));
    Average right = make(0);
    right.mergeFrom(inner);
    EXPECT_EQ(left.count(), right.count());
    EXPECT_DOUBLE_EQ(left.sum(), right.sum());
    EXPECT_DOUBLE_EQ(left.minValue(), right.minValue());
    EXPECT_DOUBLE_EQ(left.maxValue(), right.maxValue());
}

TEST(StatRegistryMerge, NameUnionCountersAddAveragesMerge)
{
    StatRegistry a, b;
    a.counter("shared").inc(3);
    a.counter("only_a").inc(1);
    a.average("lat").sample(10.0);
    b.counter("shared").inc(5);
    b.counter("only_b").inc(2);
    b.average("lat").sample(30.0);
    b.average("only_b_avg").sample(1.5);

    a.mergeFrom(b);
    EXPECT_EQ(a.counterValue("shared"), 8u);
    EXPECT_EQ(a.counterValue("only_a"), 1u);
    EXPECT_EQ(a.counterValue("only_b"), 2u);
    EXPECT_EQ(a.average("lat").count(), 2u);
    EXPECT_DOUBLE_EQ(a.average("lat").mean(), 20.0);
    EXPECT_EQ(a.average("only_b_avg").count(), 1u);
}

TEST(HistogramMerge, BucketwiseEqualsUnionSampling)
{
    Histogram a(0.0, 100.0, 10), b(0.0, 100.0, 10),
        all(0.0, 100.0, 10);
    for (double v : {5.0, 15.0, 95.0, -3.0}) {
        a.sample(v);
        all.sample(v);
    }
    for (double v : {15.0, 250.0, 55.0}) {
        b.sample(v);
        all.sample(v);
    }
    a.mergeFrom(b);
    EXPECT_EQ(a.totalSamples(), all.totalSamples());
    EXPECT_EQ(a.underflow(), all.underflow());
    EXPECT_EQ(a.overflow(), all.overflow());
    for (std::size_t i = 0; i < all.bucketCount(); ++i)
        EXPECT_EQ(a.bucketValue(i), all.bucketValue(i));
    EXPECT_DOUBLE_EQ(a.percentile(0.5), all.percentile(0.5));
}

TEST(MetricSheetMerge, AllFamiliesAndAssociativity)
{
    auto make = [](std::uint64_t c, double g, double avg_sample,
                   double hist_sample) {
        telemetry::MetricSheet s;
        s.counter("n").inc(c);
        s.setGauge("high_water", g);
        s.average("avg").sample(avg_sample);
        s.histogram("h", 0.0, 10.0, 5).sample(hist_sample);
        return s;
    };
    telemetry::MetricSheet a = make(1, 5.0, 2.0, 1.0);
    telemetry::MetricSheet b = make(10, 3.0, 4.0, 9.0);
    telemetry::MetricSheet c = make(100, 4.0, 6.0, 5.0);

    telemetry::MetricSheet left = make(1, 5.0, 2.0, 1.0);
    left.mergeFrom(b);
    left.mergeFrom(c);

    telemetry::MetricSheet inner = make(10, 3.0, 4.0, 9.0);
    inner.mergeFrom(c);
    telemetry::MetricSheet right = make(1, 5.0, 2.0, 1.0);
    right.mergeFrom(inner);

    EXPECT_EQ(sheetString(left), sheetString(right));
    EXPECT_EQ(left.counterValue("n"), 111u);
    EXPECT_DOUBLE_EQ(left.gaugeValue("high_water"), 5.0); // max
    EXPECT_EQ(left.average("avg").count(), 3u);
    EXPECT_DOUBLE_EQ(left.average("avg").mean(), 4.0);
    EXPECT_EQ(left.histogram("h", 0.0, 10.0, 5).totalSamples(), 3u);

    // Merging an empty sheet is the identity.
    const std::string before = sheetString(left);
    left.mergeFrom(telemetry::MetricSheet{});
    EXPECT_EQ(sheetString(left), before);
}

TEST(MetricSheetMerge, ExportFlatShape)
{
    telemetry::MetricSheet s;
    s.counter("c").inc(7);
    s.setGauge("g", 2.5);
    s.average("a").sample(3.0);
    s.histogram("h", 0.0, 4.0, 4).sample(1.0);
    const auto flat = s.exportFlat();
    EXPECT_DOUBLE_EQ(flat.at("c"), 7.0);
    EXPECT_DOUBLE_EQ(flat.at("g"), 2.5);
    EXPECT_DOUBLE_EQ(flat.at("a"), 3.0);
    EXPECT_DOUBLE_EQ(flat.at("a.count"), 1.0);
    EXPECT_DOUBLE_EQ(flat.at("h.count"), 1.0);
    EXPECT_TRUE(flat.count("h.mean"));
    EXPECT_TRUE(flat.count("h.p50"));
    EXPECT_TRUE(flat.count("h.p99"));
}

// ------------------------------------------------- event ring buffer

TEST(EventRecorder, RingKeepsMostRecentOldestFirst)
{
    telemetry::EventRecorder rec(kBanks, /*capacity=*/4);
    for (std::uint32_t i = 0; i < 10; ++i)
        rec.record(telemetry::EventKind::RfmIssued,
                   /*tick=*/100 * (i + 1), /*bank=*/3, /*row=*/i);

    EXPECT_EQ(rec.emitted(3), 10u);
    EXPECT_EQ(rec.dropped(), 6u);
    EXPECT_EQ(
        rec.emittedOfKind(telemetry::EventKind::RfmIssued), 10u);

    const auto events = rec.bankEvents(3);
    ASSERT_EQ(events.size(), 4u);
    // Rows 6..9 survive, oldest first, even though the ring wrapped.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(events[i].row, 6 + i);
        EXPECT_EQ(events[i].tick,
                  static_cast<Tick>(100 * (7 + i)));
    }
    // Untouched banks stay empty and never allocated a ring.
    EXPECT_EQ(rec.emitted(0), 0u);
    EXPECT_TRUE(rec.bankEvents(0).empty());
}

TEST(EventRecorder, MergeEventsTickOrderedAndShardInvariant)
{
    // One recorder covering all banks vs the same events split
    // across two recorders with disjoint bank halves.
    std::vector<telemetry::TraceEvent> raw;
    for (std::uint32_t i = 0; i < 40; ++i) {
        telemetry::TraceEvent e;
        e.tick = 1000 - 25 * (i % 7); // Deliberate tick collisions.
        e.bank = i % kBanks;
        e.row = i;
        e.kind = telemetry::EventKind::ArrFired;
        raw.push_back(e);
    }

    telemetry::EventRecorder whole(kBanks, 64);
    telemetry::EventRecorder lowHalf(kBanks, 64);
    telemetry::EventRecorder highHalf(kBanks, 64);
    for (const auto &e : raw) {
        whole.record(e.kind, e.tick, e.bank, e.row);
        (e.bank < kBanks / 2 ? lowHalf : highHalf)
            .record(e.kind, e.tick, e.bank, e.row);
    }

    const auto merged_whole = telemetry::mergeEvents({&whole});
    const auto merged_split =
        telemetry::mergeEvents({&lowHalf, &highHalf});
    ASSERT_EQ(merged_whole.size(), raw.size());
    EXPECT_EQ(merged_whole, merged_split);
    for (std::size_t i = 1; i < merged_whole.size(); ++i)
        EXPECT_LE(merged_whole[i - 1].tick, merged_whole[i].tick);
}

// ------------------------------------------------------- ACT heatmap

TEST(Heatmap, CoarsensToBudgetPreservingTotals)
{
    telemetry::ActHeatmap hm(kBanks, /*budget=*/4);
    // 16 distinct single rows on bank 0 force two fold rounds
    // (16 regions -> 8 -> 4).
    for (RowId r = 0; r < 16; ++r)
        hm.touch(0, r);
    EXPECT_EQ(hm.totalActs(), 16u);
    EXPECT_EQ(hm.granularityLog2(0), 2u);
    EXPECT_EQ(hm.folds(0), 2u);

    const auto snap = hm.bankSnapshot(0);
    ASSERT_EQ(snap.regions.size(), 4u);
    for (const auto &[region, count] : snap.regions)
        EXPECT_EQ(count, 4u) << "region " << region;

    // A bank under budget stays at single-row granularity.
    hm.touch(1, 100, 5);
    EXPECT_EQ(hm.granularityLog2(1), 0u);
    EXPECT_EQ(hm.bankSnapshot(1).regions.at(100), 5u);
}

TEST(Heatmap, MergeDisjointBanksIsUnion)
{
    telemetry::ActHeatmap a(kBanks, 8), b(kBanks, 8),
        all(kBanks, 8);
    for (RowId r = 0; r < 12; ++r) {
        a.touch(2, r);
        all.touch(2, r);
    }
    for (RowId r = 64; r < 67; ++r) {
        b.touch(9, r, 2);
        all.touch(9, r, 2);
    }
    a.mergeFrom(b);
    EXPECT_EQ(a.totalActs(), all.totalActs());
    EXPECT_EQ(a.dump(), all.dump());
}

// ------------------------------------------------ Chrome trace shape

TEST(ChromeTrace, WellFormedInstantsAndSlices)
{
    std::vector<telemetry::TraceEvent> events;
    telemetry::TraceEvent inst;
    inst.tick = 1234567;
    inst.bank = 2;
    inst.row = 99;
    inst.arg = 4;
    inst.kind = telemetry::EventKind::OracleFlip;
    events.push_back(inst);
    telemetry::TraceEvent slice;
    slice.tick = 2000000;
    slice.dur = 500000;
    slice.bank = 5;
    slice.kind = telemetry::EventKind::ThrottleStall;
    events.push_back(slice);

    const std::string json = traceString(events);
    // Envelope.
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
    // Process + one thread_name metadata record per bank.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"bank 15\""), std::string::npos);
    // The instant: phase "i", microsecond ts with ps precision.
    EXPECT_NE(json.find("\"name\":\"oracle_flip\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ts\":1.234567,\"ph\":\"i\""),
              std::string::npos);
    // The duration slice: phase "X" with dur.
    EXPECT_NE(json.find("\"ts\":2.000000,\"ph\":\"X\","
                        "\"dur\":0.500000"),
              std::string::npos);
    // Balanced braces (cheap well-formedness check: the writer emits
    // no string containing braces).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(ChromeTrace, EmptyStreamStillValid)
{
    const std::string json = traceString({});
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
}

// --------------------------------- observation-only + shard invariance

class TelemetrySchemeTest : public testing::TestWithParam<std::string>
{
};

TEST_P(TelemetrySchemeTest, CollectorsDoNotPerturbOutcome)
{
    const std::string scheme = GetParam();

    auto run = [&](const telemetry::TelemetryConfig &tel) {
        engine::ShardedActStreamEngine eng(
            engineConfig(/*shards=*/4, tel),
            [&] { return makeTracker(scheme); });
        eng.run([&] { return makeAttackStream(); }, kActs);
        return outcomeOf(eng);
    };

    const Outcome plain = run({});
    const Outcome observed = run(allOn());
    EXPECT_EQ(plain, observed) << "scheme " << scheme;
}

TEST_P(TelemetrySchemeTest, SheetAndTraceShardInvariant)
{
    const std::string scheme = GetParam();

    auto run = [&](std::uint32_t shards, unsigned pool_threads) {
        std::unique_ptr<runner::ThreadPool> pool;
        engine::ShardedEngineConfig cfg =
            engineConfig(shards, allOn());
        if (pool_threads > 0) {
            pool = std::make_unique<runner::ThreadPool>(
                pool_threads);
            cfg.pool = pool.get();
        }
        engine::ShardedActStreamEngine eng(
            cfg, [&] { return makeTracker(scheme); });
        eng.run([&] { return makeAttackStream(); }, kActs);
        return std::make_pair(sheetString(eng.telemetrySheet()),
                              traceString(eng.mergedEvents()));
    };

    const auto [ref_sheet, ref_trace] = run(1, 0);
    EXPECT_FALSE(ref_sheet.empty());
    for (std::uint32_t shards : {4u, kBanks}) {
        for (unsigned pool_threads : {0u, 4u}) {
            const auto [sheet, trace] = run(shards, pool_threads);
            EXPECT_EQ(sheet, ref_sheet)
                << scheme << " shards=" << shards
                << " pool=" << pool_threads;
            EXPECT_EQ(trace, ref_trace)
                << scheme << " shards=" << shards
                << " pool=" << pool_threads;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, TelemetrySchemeTest,
    testing::ValuesIn(registry::schemeRegistry().names()),
    schemeCaseName);

// Heatmap snapshots are checked separately from the sheet: the dump
// carries the full per-bank region tables, not just the totals.
TEST(TelemetryEngine, HeatmapShardInvariant)
{
    auto run = [&](std::uint32_t shards) {
        engine::ShardedActStreamEngine eng(
            engineConfig(shards, allOn()),
            [&] { return makeTracker("mithril"); });
        eng.run([&] { return makeAttackStream(); }, kActs);
        return eng.mergedHeatmap().dump();
    };
    const std::string ref = run(1);
    EXPECT_FALSE(ref.empty());
    EXPECT_EQ(run(4), ref);
    EXPECT_EQ(run(kBanks), ref);
}

TEST(TelemetryEngine, SheetCoversEngineOracleTraceHeatmap)
{
    engine::ShardedActStreamEngine eng(
        engineConfig(4, allOn()),
        [&] { return makeTracker("mithril"); });
    eng.run([&] { return makeAttackStream(); }, kActs);

    telemetry::MetricSheet sheet = eng.telemetrySheet();
    EXPECT_EQ(sheet.counterValue("engine.acts"), eng.acts());
    EXPECT_EQ(sheet.counterValue("engine.refs"), eng.refs());
    EXPECT_EQ(sheet.counterValue("oracle.bit_flips"),
              eng.bitFlips());
    EXPECT_DOUBLE_EQ(sheet.gaugeValue("oracle.max_disturbance"),
                     eng.maxDisturbanceEver());
    EXPECT_EQ(sheet.counterValue("heatmap.acts"), eng.acts());
    // The trace accounting covers everything ever emitted, retained
    // or not.
    const auto events = eng.mergedEvents();
    EXPECT_EQ(sheet.counterValue("trace.emitted"),
              events.size() + sheet.counterValue("trace.dropped"));
}

// ----------------------------------------- experiment-level plumbing

TEST(TelemetryExperiment, EngineRunExportsSheetAndTraceFile)
{
    const std::string path =
        testing::TempDir() + "telemetry_engine_trace.json";

    sim::ExperimentSpec spec;
    spec.scheme = "mithril";
    spec.source = "attack";
    spec.attack = "multi-sided";
    spec.engineActs = 30000;
    spec.shards = 4;
    spec.flipTh = kFlipTh;
    spec.telemetry = true;
    spec.traceEvents = path;

    const sim::RunMetrics m = sim::runExperiment(spec);
    EXPECT_FALSE(m.telemetry.empty());
    EXPECT_TRUE(m.telemetry.count("engine.acts"));
    EXPECT_DOUBLE_EQ(m.telemetry.at("engine.acts"),
                     static_cast<double>(m.acts));
    EXPECT_TRUE(m.telemetry.count("trace.emitted"));
    EXPECT_TRUE(m.telemetry.count("heatmap.acts"));

    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.good()) << "trace file not written: " << path;
    std::stringstream buf;
    buf << is.rdbuf();
    const std::string json = buf.str();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"name\":\"mithril\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(TelemetryExperiment, TelemetryOffByDefaultAndOutcomeIdentical)
{
    sim::ExperimentSpec spec;
    spec.scheme = "graphene";
    spec.source = "attack";
    spec.attack = "double-sided";
    spec.engineActs = 30000;
    spec.shards = 2;
    spec.flipTh = kFlipTh;

    const sim::RunMetrics off = sim::runExperiment(spec);
    EXPECT_TRUE(off.telemetry.empty());

    spec.telemetry = true;
    const sim::RunMetrics on = sim::runExperiment(spec);
    EXPECT_FALSE(on.telemetry.empty());
    EXPECT_EQ(on.acts, off.acts);
    EXPECT_EQ(on.rfmIssued, off.rfmIssued);
    EXPECT_EQ(on.preventiveRefreshes, off.preventiveRefreshes);
    EXPECT_EQ(on.simTicks, off.simTicks);
}

TEST(TelemetryExperiment, SpecKeysRoundTripAndStayQuietByDefault)
{
    // Defaults leave describe() untouched (golden stability).
    const sim::ExperimentSpec defaults;
    const std::string described = defaults.describe();
    EXPECT_EQ(described.find("telemetry"), std::string::npos);
    EXPECT_EQ(described.find("trace-events"), std::string::npos);
    EXPECT_EQ(described.find("heatmap-regions"), std::string::npos);
    EXPECT_EQ(described.find("trace-capacity"), std::string::npos);

    ParamSet params;
    params.set("telemetry", "1");
    params.set("trace-events", "out.json");
    params.set("heatmap-regions", "128");
    params.set("trace-capacity", "1000");
    const sim::ExperimentSpec spec =
        sim::ExperimentSpec::fromParams(params);
    EXPECT_TRUE(spec.telemetry);
    EXPECT_EQ(spec.traceEvents, "out.json");
    EXPECT_EQ(spec.heatmapRegions, 128u);
    EXPECT_EQ(spec.traceCapacity, 1000u);

    const ParamSet out = spec.toParams();
    const sim::ExperimentSpec again =
        sim::ExperimentSpec::fromParams(out);
    EXPECT_TRUE(again.telemetry);
    EXPECT_EQ(again.traceEvents, "out.json");
    EXPECT_EQ(again.heatmapRegions, 128u);
    EXPECT_EQ(again.traceCapacity, 1000u);
}

TEST(TelemetryExperiment, SystemPathSmoke)
{
    sim::ExperimentSpec spec;
    spec.scheme = "mithril";
    spec.workload = "mix-high";
    spec.attack = "multi-sided";
    spec.cores = 2;
    spec.instrPerCore = 5000;
    spec.telemetry = true;

    const sim::RunMetrics m = sim::runExperiment(spec);
    EXPECT_FALSE(m.telemetry.empty());
    EXPECT_TRUE(m.telemetry.count("mc.acts"));
    EXPECT_DOUBLE_EQ(m.telemetry.at("mc.acts"),
                     static_cast<double>(m.acts));
    EXPECT_TRUE(m.telemetry.count("oracle.bit_flips"));
    EXPECT_TRUE(m.telemetry.count("heatmap.acts"));

    // And byte-identical headline metrics with telemetry off.
    sim::ExperimentSpec off_spec = spec;
    off_spec.telemetry = false;
    const sim::RunMetrics off = sim::runExperiment(off_spec);
    EXPECT_EQ(m.acts, off.acts);
    EXPECT_EQ(m.rfmIssued, off.rfmIssued);
    EXPECT_EQ(m.preventiveRefreshes, off.preventiveRefreshes);
    EXPECT_EQ(m.simTicks, off.simTicks);
}

} // namespace
} // namespace mithril
