/**
 * @file
 * Tests for trace file I/O: parse/format round trips, error handling,
 * replay semantics, and record-then-replay equivalence against a live
 * generator.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"
#include "workload/spec_like.hh"
#include "workload/trace_file.hh"

namespace mithril::workload
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("mithril_trace_test_" +
                std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

TEST_F(TraceFileTest, ParseBasicRecord)
{
    TraceRecord rec;
    ASSERT_TRUE(parseTraceLine("12 0x1a40 R", 1, rec));
    EXPECT_EQ(rec.gap, 12u);
    EXPECT_EQ(rec.addr, 0x1a40u);
    EXPECT_FALSE(rec.write);
    EXPECT_FALSE(rec.uncached);
}

TEST_F(TraceFileTest, ParseWriteAndUncachedFlag)
{
    TraceRecord rec;
    ASSERT_TRUE(parseTraceLine("1 ff00 W U", 7, rec));
    EXPECT_TRUE(rec.write);
    EXPECT_TRUE(rec.uncached);
    EXPECT_EQ(rec.addr, 0xff00u);
}

TEST_F(TraceFileTest, ParseSkipsCommentsAndBlanks)
{
    TraceRecord rec;
    EXPECT_FALSE(parseTraceLine("# comment", 1, rec));
    EXPECT_FALSE(parseTraceLine("", 2, rec));
    EXPECT_FALSE(parseTraceLine("   \t ", 3, rec));
    EXPECT_FALSE(parseTraceLine("  # indented comment", 4, rec));
}

TEST_F(TraceFileTest, ParseZeroGapClampsToOne)
{
    TraceRecord rec;
    ASSERT_TRUE(parseTraceLine("0 0x40 R", 1, rec));
    EXPECT_EQ(rec.gap, 1u);
}

TEST_F(TraceFileTest, MalformedLinesAreFatal)
{
    setLogThrowOnFatal(true);
    std::string capture;
    setLogCapture(&capture);
    TraceRecord rec;
    EXPECT_THROW(parseTraceLine("notanumber 0x40 R", 1, rec),
                 std::runtime_error);
    EXPECT_THROW(parseTraceLine("1 zz R", 1, rec),
                 std::runtime_error);
    EXPECT_THROW(parseTraceLine("1 0x40 X", 1, rec),
                 std::runtime_error);
    EXPECT_THROW(parseTraceLine("1 0x40 R Z", 1, rec),
                 std::runtime_error);
    EXPECT_THROW(parseTraceLine("1", 1, rec), std::runtime_error);
    setLogCapture(nullptr);
    setLogThrowOnFatal(false);
}

TEST_F(TraceFileTest, FormatParseRoundTrip)
{
    TraceRecord rec;
    rec.gap = 42;
    rec.addr = 0xdeadbeef;
    rec.write = true;
    rec.uncached = true;
    TraceRecord back;
    ASSERT_TRUE(parseTraceLine(formatTraceRecord(rec), 1, back));
    EXPECT_EQ(back.gap, rec.gap);
    EXPECT_EQ(back.addr, rec.addr);
    EXPECT_EQ(back.write, rec.write);
    EXPECT_EQ(back.uncached, rec.uncached);
}

TEST_F(TraceFileTest, WriteLoadRoundTrip)
{
    std::vector<TraceRecord> records;
    for (int i = 0; i < 100; ++i) {
        TraceRecord rec;
        rec.gap = static_cast<std::uint64_t>(i % 7) + 1;
        rec.addr = static_cast<Addr>(i) * 64;
        rec.write = (i % 3 == 0);
        rec.uncached = (i % 11 == 0);
        records.push_back(rec);
    }
    const std::string file = path("roundtrip.trace");
    EXPECT_EQ(writeTraceFile(file, records, "test header"), 100u);

    auto replay = loadTraceFile(file);
    ASSERT_EQ(replay->size(), 100u);
    for (int i = 0; i < 100; ++i) {
        auto rec = replay->next();
        ASSERT_TRUE(rec.has_value()) << i;
        EXPECT_EQ(rec->gap, records[i].gap);
        EXPECT_EQ(rec->addr, records[i].addr);
        EXPECT_EQ(rec->write, records[i].write);
        EXPECT_EQ(rec->uncached, records[i].uncached);
    }
    EXPECT_FALSE(replay->next().has_value());
}

TEST_F(TraceFileTest, ReplayLoops)
{
    std::vector<TraceRecord> records(3);
    records[0].addr = 0x40;
    records[1].addr = 0x80;
    records[2].addr = 0xc0;
    ReplayTrace replay(records, true);
    for (int i = 0; i < 10; ++i) {
        auto rec = replay.next();
        ASSERT_TRUE(rec.has_value());
        EXPECT_EQ(rec->addr, records[i % 3].addr);
    }
}

TEST_F(TraceFileTest, EmptyReplayEndsImmediately)
{
    ReplayTrace replay({}, false);
    EXPECT_FALSE(replay.next().has_value());
    ReplayTrace looped({}, true);
    EXPECT_FALSE(looped.next().has_value());
}

TEST_F(TraceFileTest, LoadMissingFileIsFatal)
{
    setLogThrowOnFatal(true);
    std::string capture;
    setLogCapture(&capture);
    EXPECT_THROW(loadTraceFile(path("does_not_exist.trace")),
                 std::runtime_error);
    setLogCapture(nullptr);
    setLogThrowOnFatal(false);
}

TEST_F(TraceFileTest, RecordedGeneratorReplaysIdentically)
{
    SyntheticParams params;
    params.base = 1ull << 30;
    params.footprint = 8ull << 20;
    params.seed = 5;
    const std::string file = path("recorded.trace");
    {
        StreamSweepGen gen(params);
        EXPECT_EQ(recordTrace(gen, 500, file), 500u);
    }
    StreamSweepGen reference(params);
    auto replay = loadTraceFile(file);
    for (int i = 0; i < 500; ++i) {
        auto a = reference.next();
        auto b = replay->next();
        ASSERT_TRUE(a && b);
        EXPECT_EQ(a->addr, b->addr) << i;
        EXPECT_EQ(a->gap, b->gap) << i;
        EXPECT_EQ(a->write, b->write) << i;
    }
}

TEST_F(TraceFileTest, CommentsAndMixedContentLoad)
{
    const std::string file = path("mixed.trace");
    {
        std::ofstream out(file);
        out << "# header\n\n10 0x100 R\n# mid comment\n5 0x200 W U\n";
    }
    auto replay = loadTraceFile(file);
    EXPECT_EQ(replay->size(), 2u);
    EXPECT_EQ(replay->next()->addr, 0x100u);
    auto second = replay->next();
    EXPECT_TRUE(second->write);
    EXPECT_TRUE(second->uncached);
}

} // namespace
} // namespace mithril::workload
