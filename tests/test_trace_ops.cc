/**
 * @file
 * The trace-algebra pin suite: every registered trace-op, the
 * pipeline syntax, and the mmap decode path.
 *
 * Four layers of guarantees:
 *
 *  1. Algebraic identities: merge(slice-by-bank(T)) == T,
 *     dilate(1/1) == identity, remap composed with its inverse
 *     rotation == identity, slice keeps exactly [from, to) x
 *     [bank-lo, bank-hi), splice adds exactly the injection while
 *     preserving every background record — and every materialized
 *     output is byte-deterministic.
 *  2. The mmap decoder: mapped and buffered readers emit identical
 *     records for full drains, bank slices, and bounded budgets;
 *     bankSpans() agrees with a full scan from the index alone.
 *  3. Composed corpora replay shard-invariantly: a 16-tenant merged +
 *     attack-spliced corpus produces one identical outcome for every
 *     registered scheme at shards {1, 4, 16} across pool sizes, and
 *     a fuzzed mutation corpus over composed traces must parse or
 *     raise registry::SpecError under both decoders — never UB (the
 *     CI sanitize job runs this suite under ASan/UBSan).
 *  4. Crash-safety: ActTraceWriter publishes through a temp file +
 *     atomic rename — no finalize, no file; re-materializing over an
 *     existing trace replaces it atomically.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "engine/act_trace.hh"
#include "engine/sharded_engine.hh"
#include "registry/scheme_registry.hh"
#include "runner/sweep_spec.hh"
#include "runner/thread_pool.hh"
#include "sim/experiment.hh"
#include "trace/op_registry.hh"
#include "trace/pipeline.hh"

namespace mithril
{
namespace
{

using registry::SpecError;

// ------------------------------------------------------- plumbing

constexpr std::uint32_t kBanks = 16;
constexpr std::uint32_t kRows = 65536;
constexpr std::uint32_t kFlipTh = 3125;

dram::Geometry
smallGeometry(std::uint32_t banks = kBanks,
              std::uint32_t rows = kRows)
{
    dram::Geometry geom = dram::paperGeometry();
    geom.channels = 1;
    geom.ranksPerChannel = 1;
    geom.banksPerRank = banks;
    geom.rowsPerBank = rows;
    return geom;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "traceops_" + name;
}

struct Rec
{
    BankId bank;
    RowId row;
    Tick tick;

    bool
    operator==(const Rec &o) const
    {
        return bank == o.bank && row == o.row && tick == o.tick;
    }
};

std::vector<Rec>
drain(engine::ActSource &source)
{
    std::vector<Rec> out;
    engine::ActBatch batch;
    for (;;) {
        batch.clear();
        const std::size_t n =
            source.fill(batch, engine::ActBatch::kCapacity);
        if (n == 0)
            break;
        for (std::size_t i = 0; i < n; ++i) {
            const engine::ActRecord r = batch.record(i);
            out.push_back({r.bank, r.row, r.tick});
        }
    }
    return out;
}

std::vector<Rec>
drainStream(trace::RecordStream &stream)
{
    std::vector<Rec> out;
    trace::TraceRecord r;
    while (stream.next(r))
        out.push_back({r.bank, r.row, r.tick});
    return out;
}

/** Canonical-order records of a trace file, via either decoder. */
std::vector<Rec>
readRecords(const std::string &path, bool mmap)
{
    engine::ActTraceSource source(path,
                                  engine::ActTraceReadOptions{mmap});
    return drain(source);
}

/** Random stream with in-range banks/rows and per-bank
 *  non-decreasing ticks, optionally confined to a bank range. */
std::vector<Rec>
randomStream(std::uint64_t seed, const dram::Geometry &geom,
             std::size_t count, std::uint32_t bank_lo = 0,
             std::uint32_t bank_hi = 0)
{
    if (bank_hi == 0)
        bank_hi = geom.totalBanks();
    std::mt19937_64 rng(seed);
    std::vector<Tick> last(geom.totalBanks(), 0);
    std::vector<Rec> recs;
    recs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const auto bank = static_cast<BankId>(
            bank_lo + rng() % (bank_hi - bank_lo));
        const auto row =
            static_cast<RowId>(rng() % geom.rowsPerBank);
        last[bank] += static_cast<Tick>(rng() % 5000);
        recs.push_back({bank, row, last[bank]});
    }
    return recs;
}

void
writeTrace(const std::string &path, const dram::Geometry &geom,
           std::uint64_t seed, const std::string &meta,
           const std::vector<Rec> &recs)
{
    engine::ActTraceWriter writer(path, geom, seed, meta);
    for (const Rec &r : recs)
        writer.append(r.bank, r.row, r.tick);
    writer.finalize();
}

std::vector<std::vector<Rec>>
perBank(const std::vector<Rec> &recs, std::uint32_t banks)
{
    std::vector<std::vector<Rec>> out(banks);
    for (const Rec &r : recs)
        out[r.bank].push_back(r);
    return out;
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path,
          const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** A small tenant trace on disk; memoized per (name, seed, count). */
std::string
tenantTrace(const std::string &name, std::uint64_t seed,
            std::size_t count)
{
    const std::string path = tmpPath(name);
    if (!fileExists(path)) {
        writeTrace(path, smallGeometry(), seed, "tenant:" + name,
                   randomStream(seed, smallGeometry(), count));
    }
    return path;
}

// ------------------------------------- pipeline syntax and wiring

TEST(TracePipelineParse, SyntaxAndParameterErrors)
{
    EXPECT_THROW(trace::parsePipeline(""), SpecError);
    EXPECT_THROW(trace::parsePipeline("bogus:a.acttrace"), SpecError);
    // Undeclared / duplicate / out-of-range parameters fail at parse
    // time, before any file is touched.
    EXPECT_THROW(trace::parsePipeline("remap:a,frobnicate=1"),
                 SpecError);
    EXPECT_THROW(
        trace::parsePipeline("remap:a,bank-rotate=1,bank-rotate=2"),
        SpecError);
    EXPECT_THROW(trace::parsePipeline("dilate:a,num=0"), SpecError);

    // The unknown-op error teaches the registered vocabulary.
    try {
        trace::parsePipeline("bogus:a.acttrace");
        FAIL() << "expected SpecError";
    } catch (const SpecError &err) {
        EXPECT_NE(std::string(err.what()).find("merge"),
                  std::string::npos)
            << err.what();
    }

    // Aliases resolve to the canonical op.
    const std::vector<trace::PipelineStage> stages =
        trace::parsePipeline("interleave:a,b|timescale:num=2");
    ASSERT_EQ(stages.size(), 2u);
    EXPECT_EQ(stages[0].op, "merge");
    EXPECT_EQ(stages[1].op, "dilate");
}

TEST(TracePipelineBuild, StagePlacementErrors)
{
    const std::string t0 = tenantTrace("build_t0", 11, 500);
    const std::string t1 = tenantTrace("build_t1", 12, 500);

    // Head op mid-pipeline.
    EXPECT_THROW(trace::buildPipeline(
                     "merge:" + t0 + "|merge:" + t1, 42),
                 SpecError);
    // Filter op with neither upstream nor input...
    EXPECT_THROW(trace::buildPipeline("remap:bank-rotate=1", 42),
                 SpecError);
    // ...with upstream AND an input...
    EXPECT_THROW(trace::buildPipeline(
                     "merge:" + t0 + "|slice:" + t1, 42),
                 SpecError);
    // ...or with two inputs.
    EXPECT_THROW(trace::buildPipeline("slice:" + t0 + "," + t1, 42),
                 SpecError);

    // Eager option validation: empty bank range / tick window.
    EXPECT_THROW(trace::buildPipeline(
                     "slice:" + t0 + ",bank-lo=5,bank-hi=5", 42),
                 SpecError);
    EXPECT_THROW(trace::buildPipeline(
                     "slice:" + t0 + ",from=10,to=10", 42),
                 SpecError);
    // splice needs exactly one of with= / attack=.
    EXPECT_THROW(trace::buildPipeline("splice:" + t0, 42), SpecError);
    EXPECT_THROW(
        trace::buildPipeline("splice:" + t0 + ",with=" + t1 +
                                 ",attack=multi-sided",
                             42),
        SpecError);
}

TEST(TracePipelineMaterialize, RefusesOutputAliasingAnInput)
{
    const std::string t0 = tenantTrace("alias_t0", 13, 500);
    const std::string t1 = tenantTrace("alias_t1", 14, 500);
    const std::vector<std::uint8_t> before = readFile(t0);

    EXPECT_THROW(trace::materializePipeline("merge:" + t0 + "," + t1,
                                            t0, 42),
                 SpecError);
    // The splice with= side input is an input too.
    EXPECT_THROW(trace::materializePipeline(
                     "slice:" + t0 + "|splice:with=" + t1 + ",at=5",
                     t1, 42),
                 SpecError);
    EXPECT_EQ(readFile(t0), before); // Inputs untouched.
    EXPECT_TRUE(fileExists(t1));
}

TEST(TracePipelineMaterialize, RecordsTheSpecInMeta)
{
    const std::string t0 = tenantTrace("meta_t0", 15, 500);
    const std::string out = tmpPath("meta_out");
    const std::string spec = "slice:" + t0 + ",to=100000";
    const engine::ActTraceInfo info =
        trace::materializePipeline(spec, out, 42);
    EXPECT_EQ(info.meta,
              std::string(trace::kPipelineMetaPrefix) + spec);
}

// --------------------------------------------- merge: k-way heap

TEST(TraceMerge, SliceByBankThenMergeIsIdentity)
{
    const dram::Geometry geom = smallGeometry();
    const std::string t = tmpPath("split_src");
    writeTrace(t, geom, 21, "", randomStream(21, geom, 20000));

    const std::string lo = tmpPath("split_lo");
    const std::string hi = tmpPath("split_hi");
    const std::string merged = tmpPath("split_merged");
    trace::materializePipeline("slice:" + t + ",bank-hi=8", lo, 42);
    trace::materializePipeline("slice:" + t + ",bank-lo=8", hi, 42);
    trace::materializePipeline("merge:" + lo + "," + hi, merged, 42);

    // Identity is per-bank: every bank's subsequence — the semantic
    // content of a trace — survives the split/merge round trip.
    EXPECT_EQ(perBank(readRecords(merged, true), kBanks),
              perBank(readRecords(t, true), kBanks));
}

TEST(TraceMerge, EmitsGlobalTickOrderAndDeterministicBytes)
{
    const std::string t0 = tenantTrace("merge_t0", 22, 12000);
    const std::string t1 = tenantTrace("merge_t1", 23, 12000);
    const std::string spec = "merge:" + t0 + "," + t1;

    const std::unique_ptr<trace::RecordStream> stream =
        trace::buildPipeline(spec, 42);
    const std::vector<Rec> recs = drainStream(*stream);
    ASSERT_EQ(recs.size(), 24000u);
    for (std::size_t i = 1; i < recs.size(); ++i)
        ASSERT_LE(recs[i - 1].tick, recs[i].tick) << "at " << i;

    // Per-bank content: the tick-merge of the two inputs' banks.
    const auto banks0 = perBank(readRecords(t0, true), kBanks);
    const auto banks1 = perBank(readRecords(t1, true), kBanks);
    const auto got = perBank(recs, kBanks);
    for (std::uint32_t b = 0; b < kBanks; ++b) {
        EXPECT_EQ(got[b].size(),
                  banks0[b].size() + banks1[b].size())
            << "bank " << b;
        EXPECT_TRUE(std::is_sorted(
            got[b].begin(), got[b].end(),
            [](const Rec &a, const Rec &c) { return a.tick < c.tick; }))
            << "bank " << b;
    }

    // Same pipeline, same seed -> byte-identical files.
    const std::string out1 = tmpPath("merge_out1");
    const std::string out2 = tmpPath("merge_out2");
    trace::materializePipeline(spec, out1, 42);
    trace::materializePipeline(spec, out2, 42);
    EXPECT_EQ(readFile(out1), readFile(out2));
}

// -------------------------------------------- dilate: time scaling

TEST(TraceDilate, UnitScaleIsIdentity)
{
    const std::string t = tenantTrace("dilate_t", 31, 8000);
    const std::unique_ptr<trace::RecordStream> stream =
        trace::buildPipeline("dilate:" + t + ",num=1,den=1", 42);
    EXPECT_EQ(drainStream(*stream), readRecords(t, true));
}

TEST(TraceDilate, ScalesTicksByTheRational)
{
    const std::string t = tenantTrace("dilate_t", 31, 8000);
    const std::vector<Rec> base = readRecords(t, true);

    const std::unique_ptr<trace::RecordStream> x3 =
        trace::buildPipeline("dilate:" + t + ",num=3", 42);
    const std::vector<Rec> scaled = drainStream(*x3);
    ASSERT_EQ(scaled.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(scaled[i].bank, base[i].bank);
        EXPECT_EQ(scaled[i].row, base[i].row);
        EXPECT_EQ(scaled[i].tick, base[i].tick * 3) << "at " << i;
    }

    const std::unique_ptr<trace::RecordStream> rational =
        trace::buildPipeline("dilate:" + t + ",num=3,den=2", 42);
    const std::vector<Rec> halved = drainStream(*rational);
    ASSERT_EQ(halved.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        EXPECT_EQ(halved[i].tick, base[i].tick * 3 / 2) << "at " << i;
}

TEST(TraceDilate, TickOverflowThrowsInsteadOfWrapping)
{
    const std::string t = tmpPath("dilate_huge");
    writeTrace(t, smallGeometry(), 32, "",
               {{0, 1, kTickMax - 5}});
    const std::unique_ptr<trace::RecordStream> stream =
        trace::buildPipeline("dilate:" + t + ",num=2", 42);
    trace::TraceRecord r;
    EXPECT_THROW(stream->next(r), SpecError);
}

// ------------------------------------------- remap: bank/row rotate

TEST(TraceRemap, RotatesBanksAndRowsModGeometry)
{
    const std::string t = tenantTrace("remap_t", 41, 8000);
    const std::vector<Rec> base = readRecords(t, true);

    const std::unique_ptr<trace::RecordStream> stream =
        trace::buildPipeline(
            "remap:" + t + ",bank-rotate=5,row-rotate=123", 42);
    const std::vector<Rec> rotated = drainStream(*stream);
    ASSERT_EQ(rotated.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(rotated[i].bank, (base[i].bank + 5) % kBanks);
        EXPECT_EQ(rotated[i].row, (base[i].row + 123) % kRows);
        EXPECT_EQ(rotated[i].tick, base[i].tick);
    }
}

TEST(TraceRemap, ComposedWithInverseRotationIsIdentity)
{
    const std::string t = tenantTrace("remap_t", 41, 8000);
    const std::unique_ptr<trace::RecordStream> stream =
        trace::buildPipeline(
            "remap:" + t + ",bank-rotate=5,row-rotate=123"
            "|remap:bank-rotate=" + std::to_string(kBanks - 5) +
                ",row-rotate=" + std::to_string(kRows - 123),
            42);
    EXPECT_EQ(drainStream(*stream), readRecords(t, true));
}

// ----------------------------------- slice: window and bank range

TEST(TraceSlice, KeepsExactlyTheHalfOpenWindow)
{
    const std::string t = tmpPath("slice_window");
    writeTrace(t, smallGeometry(), 51, "",
               {{0, 10, 0}, {0, 11, 99}, {0, 12, 100}, {0, 13, 101},
                {0, 14, 199}, {0, 15, 200}, {0, 16, 201},
                {1, 20, 100}, {1, 21, 150}});

    // Canonical file order is per-bank inside a chunk, so slicing
    // yields bank 0's kept records, then bank 1's.
    const std::vector<Rec> windowed = drainStream(*trace::buildPipeline(
        "slice:" + t + ",from=100,to=200", 42));
    EXPECT_EQ(windowed, (std::vector<Rec>{{0, 12, 100}, {0, 13, 101},
                                          {0, 14, 199},
                                          {1, 20, 100},
                                          {1, 21, 150}}));

    // rebase=1 shifts the kept window down to tick 0.
    const std::vector<Rec> rebased = drainStream(*trace::buildPipeline(
        "slice:" + t + ",from=100,to=200,rebase=1", 42));
    EXPECT_EQ(rebased, (std::vector<Rec>{{0, 12, 0}, {0, 13, 1},
                                         {0, 14, 99},
                                         {1, 20, 0},
                                         {1, 21, 50}}));

    // to=0 means unbounded; bank range composes with the window.
    const std::vector<Rec> tail = drainStream(*trace::buildPipeline(
        "slice:" + t + ",from=200", 42));
    EXPECT_EQ(tail, (std::vector<Rec>{{0, 15, 200}, {0, 16, 201}}));

    const std::vector<Rec> bank1 = drainStream(*trace::buildPipeline(
        "slice:" + t + ",bank-lo=1,bank-hi=2", 42));
    EXPECT_EQ(bank1, (std::vector<Rec>{{1, 20, 100}, {1, 21, 150}}));
}

// ------------------------------------------- splice: injection

TEST(TraceSplice, AttackBurstLandsInsideTheWindow)
{
    const Tick at = 100000000; // Past every background tick.
    const std::string bg = tenantTrace("splice_bg", 61, 5000);
    const std::string out = tmpPath("splice_burst");
    const std::string spec = "splice:" + bg +
                             ",attack=multi-sided,at=" +
                             std::to_string(at) + ",burst-acts=3000";
    // Materializing proves per-bank monotonicity: the writer
    // validates every append.
    trace::materializePipeline(spec, out, 42);

    const std::vector<Rec> recs = readRecords(out, true);
    ASSERT_EQ(recs.size(), 8000u);
    std::size_t injected = 0;
    Tick first_injected = kTickMax;
    for (const Rec &r : recs) {
        if (r.tick >= at) {
            ++injected;
            first_injected = std::min(first_injected, r.tick);
        }
    }
    EXPECT_EQ(injected, 3000u);
    EXPECT_EQ(first_injected, at);

    // The background survives untouched.
    std::vector<Rec> bg_part;
    for (const Rec &r : recs)
        if (r.tick < at)
            bg_part.push_back(r);
    EXPECT_EQ(perBank(bg_part, kBanks),
              perBank(readRecords(bg, true), kBanks));

    // Burst synthesis is seed-deterministic.
    const std::string out2 = tmpPath("splice_burst2");
    trace::materializePipeline(spec, out2, 42);
    EXPECT_EQ(readFile(out), readFile(out2));
}

TEST(TraceSplice, SecondTraceInjectsShiftedByAt)
{
    const Tick at = 500000000;
    const std::string bg = tenantTrace("splice_bg", 61, 5000);
    const std::string other = tenantTrace("splice_other", 62, 2000);
    const std::string out = tmpPath("splice_with");
    trace::materializePipeline("splice:" + bg + ",with=" + other +
                                   ",at=" + std::to_string(at),
                               out, 42);

    const std::vector<Rec> recs = readRecords(out, true);
    ASSERT_EQ(recs.size(), 7000u);
    std::vector<Rec> injected;
    for (const Rec &r : recs)
        if (r.tick >= at)
            injected.push_back({r.bank, r.row, r.tick - at});
    EXPECT_EQ(perBank(injected, kBanks),
              perBank(readRecords(other, true), kBanks));
}

TEST(TraceSplice, GeometryMismatchIsRejectedEagerly)
{
    const std::string bg = tenantTrace("splice_bg", 61, 5000);
    const std::string narrow = tmpPath("splice_narrow");
    writeTrace(narrow, smallGeometry(8, kRows), 63, "",
               randomStream(63, smallGeometry(8, kRows), 100));
    EXPECT_THROW(trace::buildPipeline(
                     "splice:" + bg + ",with=" + narrow + ",at=0",
                     42),
                 SpecError);
}

// ------------------------------ mmap decoder == buffered decoder

TEST(TraceMmap, MappedAndBufferedDecodeIdentically)
{
    const std::string t = tenantTrace("mmap_t", 71, 30000);

    engine::ActTraceSource mapped(
        t, engine::ActTraceReadOptions{/*mmap=*/true});
    engine::ActTraceSource buffered(
        t, engine::ActTraceReadOptions{/*mmap=*/false});
    EXPECT_TRUE(mapped.mapped());
    EXPECT_FALSE(buffered.mapped());
    EXPECT_EQ(drain(mapped), drain(buffered));

    // Bank slices and bounded budgets agree too.
    for (const auto &[lo, hi] : {std::pair<BankId, BankId>{0, 4},
                                {4, 16}, {7, 8}}) {
        engine::ActTraceSource m(
            t, engine::ActTraceReadOptions{true});
        engine::ActTraceSource b(
            t, engine::ActTraceReadOptions{false});
        auto ms = m.shardSlice(lo, hi, 5000);
        auto bs = b.shardSlice(lo, hi, 5000);
        ASSERT_NE(ms, nullptr);
        ASSERT_NE(bs, nullptr);
        EXPECT_EQ(drain(*ms), drain(*bs))
            << "banks [" << lo << ", " << hi << ")";
    }
    EXPECT_EQ(readRecords(t, true).size(), 30000u);
}

TEST(TraceMmap, BankSpansMatchAFullScan)
{
    // Banks 8..15 stay empty to exercise the zero-count rows.
    const dram::Geometry geom = smallGeometry();
    const std::string t = tmpPath("mmap_spans");
    writeTrace(t, geom, 72, "",
               randomStream(72, geom, 20000, /*bank_lo=*/0,
                            /*bank_hi=*/8));

    engine::ActTraceSource source(
        t, engine::ActTraceReadOptions{true});
    const std::vector<engine::ActTraceBankSpan> spans =
        source.bankSpans();
    ASSERT_EQ(spans.size(), kBanks);

    const auto banks = perBank(readRecords(t, false), kBanks);
    for (std::uint32_t b = 0; b < kBanks; ++b) {
        EXPECT_EQ(spans[b].count, banks[b].size()) << "bank " << b;
        if (banks[b].empty())
            continue;
        EXPECT_EQ(spans[b].first, banks[b].front().tick)
            << "bank " << b;
        EXPECT_EQ(spans[b].last, banks[b].back().tick)
            << "bank " << b;
    }
}

// ------------------------------------- crash-safe trace publishing

TEST(TraceWriter, FinalizePublishesViaAtomicRename)
{
    const std::string path = tmpPath("atomic");
    const std::string tmp = path + ".tmp";
    std::remove(path.c_str());
    std::remove(tmp.c_str());
    {
        engine::ActTraceWriter writer(path, smallGeometry(), 81, "");
        writer.append(0, 1, 10);
        // In-flight bytes live in the temp file only; a crash here
        // leaves no half-written trace at the published path.
        EXPECT_TRUE(fileExists(tmp));
        EXPECT_FALSE(fileExists(path));
        writer.finalize();
    }
    EXPECT_TRUE(fileExists(path));
    EXPECT_FALSE(fileExists(tmp));
    EXPECT_EQ(engine::actTraceInfo(path).records, 1u);
}

TEST(TraceWriter, AbandonedWriterLeavesNoFiles)
{
    const std::string path = tmpPath("abandoned");
    const std::string tmp = path + ".tmp";
    std::remove(path.c_str());
    {
        engine::ActTraceWriter writer(path, smallGeometry(), 82, "");
        writer.append(0, 1, 10);
    } // Destroyed unfinalized: the temp file is swept up.
    EXPECT_FALSE(fileExists(path));
    EXPECT_FALSE(fileExists(tmp));
}

TEST(TraceWriter, RefinalizingReplacesAnExistingTrace)
{
    const std::string path = tmpPath("replace");
    writeTrace(path, smallGeometry(), 83, "", {{0, 1, 10}});
    ASSERT_EQ(engine::actTraceInfo(path).records, 1u);
    writeTrace(path, smallGeometry(), 84, "",
               {{0, 1, 10}, {1, 2, 20}, {2, 3, 30}});
    EXPECT_EQ(engine::actTraceInfo(path).records, 3u);
    EXPECT_FALSE(fileExists(path + ".tmp"));
}

// ---------------------- spec plumbing: trace-pipeline= validation

TEST(TracePipelineSpec, ExperimentSpecNeedsActTraceSource)
{
    sim::ExperimentSpec spec;
    spec.scheme = "mithril";
    spec.tracePipeline = "merge:a,b";
    // No engine source at all.
    EXPECT_THROW(spec.validate(), SpecError);
    // Engine source, but not act-trace.
    spec.source = "attack";
    spec.engineActs = 100;
    EXPECT_THROW(spec.validate(), SpecError);
    // act-trace (via its alias) without trace=.
    spec.source = "act_trace";
    EXPECT_THROW(spec.validate(), SpecError);
    spec.extras.set("trace", tmpPath("spec_target"));
    EXPECT_NO_THROW(spec.validate());
}

TEST(TracePipelineSpec, SweepSpecComposesOncePerSweep)
{
    setLogThrowOnFatal(true);
    EXPECT_THROW(
        runner::SweepSpec::fromParams(ParamSet::fromString(
            "schemes=mithril sources=act-trace "
            "trace-pipeline=merge:a,b")),
        std::runtime_error);
    const runner::SweepSpec ok =
        runner::SweepSpec::fromParams(ParamSet::fromString(
            "schemes=mithril,para sources=act-trace trace=x "
            "trace-pipeline=merge:a,b"));
    setLogThrowOnFatal(false);
    // The pipeline composes once per sweep: expanded jobs never
    // carry it (the runner materializes before expansion).
    for (const runner::Job &job : ok.expand())
        EXPECT_TRUE(job.spec.tracePipeline.empty());
}

TEST(TracePipelineSpec, SingleRunComposesThenReplays)
{
    // runExperiment replays on the paper geometry, so the tenants
    // must be captured on it too.
    const dram::Geometry geom = dram::paperGeometry();
    const std::string t0 = tmpPath("single_t0");
    const std::string t1 = tmpPath("single_t1");
    writeTrace(t0, geom, 91, "", randomStream(91, geom, 2000));
    writeTrace(t1, geom, 92, "", randomStream(92, geom, 2000));
    const std::string corpus = tmpPath("single_corpus");
    std::remove(corpus.c_str());

    sim::ExperimentSpec spec;
    spec.scheme = "mithril";
    spec.attack = "none";
    spec.source = "act-trace";
    spec.extras.set("trace", corpus);
    spec.engineActs = 4000;
    spec.tracePipeline = "merge:" + t0 + "," + t1;

    const sim::RunMetrics m = sim::runExperiment(spec);
    EXPECT_EQ(m.acts, 4000u);
    EXPECT_EQ(engine::actTraceInfo(corpus).records, 4000u);
}

// ------------- the acceptance corpus: 16 tenants + spliced attack

constexpr std::size_t kTenants = 16;
constexpr std::size_t kTenantRecords = 3000;
constexpr std::uint64_t kBurstActs = 8000;
constexpr std::uint64_t kCorpusActs =
    kTenants * kTenantRecords + kBurstActs;

/** Build (once) the multi-tenant corpus the ISSUE's acceptance
 *  criterion names: 16 merged tenants plus one spliced attack. */
std::string
corpusTrace()
{
    const std::string path = tmpPath("corpus");
    if (fileExists(path))
        return path;
    std::string spec = "merge:";
    for (std::size_t i = 0; i < kTenants; ++i) {
        if (i)
            spec += ",";
        spec += tenantTrace("corpus_t" + std::to_string(i), 100 + i,
                            kTenantRecords);
    }
    spec += "|splice:attack=multi-sided,at=100000000,burst-acts=" +
            std::to_string(kBurstActs);
    const engine::ActTraceInfo info =
        trace::materializePipeline(spec, path, 42);
    EXPECT_EQ(info.records, kCorpusActs);
    return path;
}

/** Everything a replay must reproduce byte for byte. */
struct Outcome
{
    std::uint64_t acts = 0, refs = 0, rfms = 0, preventive = 0,
                  stalls = 0;
    double maxDisturbance = 0.0;
    std::uint64_t bitFlips = 0, flippedRows = 0, logicOps = 0;
    std::vector<std::uint64_t> bankActs, bankPrev;
    std::vector<Tick> bankNow;

    bool
    operator==(const Outcome &o) const
    {
        return acts == o.acts && refs == o.refs && rfms == o.rfms &&
               preventive == o.preventive && stalls == o.stalls &&
               maxDisturbance == o.maxDisturbance &&
               bitFlips == o.bitFlips &&
               flippedRows == o.flippedRows &&
               logicOps == o.logicOps && bankActs == o.bankActs &&
               bankPrev == o.bankPrev && bankNow == o.bankNow;
    }
};

std::ostream &
operator<<(std::ostream &os, const Outcome &o)
{
    return os << "acts=" << o.acts << " refs=" << o.refs
              << " rfms=" << o.rfms << " prev=" << o.preventive
              << " stalls=" << o.stalls
              << " maxDist=" << o.maxDisturbance
              << " flips=" << o.bitFlips
              << " flippedRows=" << o.flippedRows
              << " logicOps=" << o.logicOps;
}

engine::EngineConfig
replayEngineConfig()
{
    engine::EngineConfig cfg;
    cfg.timing = dram::ddr5_4800();
    cfg.geometry = smallGeometry();
    cfg.flipTh = kFlipTh;
    return cfg;
}

std::unique_ptr<trackers::RhProtection>
makeTracker(const std::string &scheme)
{
    registry::SchemeKnobs knobs;
    knobs.flipTh = kFlipTh;
    return registry::makeScheme(scheme, knobs.toParams(),
                                {dram::ddr5_4800(), smallGeometry()});
}

Outcome
replayCorpusSharded(const std::string &scheme,
                    const std::string &path, std::uint32_t shards,
                    runner::ThreadPool *pool)
{
    engine::ShardedEngineConfig cfg;
    cfg.engine = replayEngineConfig();
    cfg.shards = shards;
    cfg.pool = pool;
    engine::ShardedActStreamEngine eng(
        cfg, [&] { return makeTracker(scheme); });
    eng.run(
        [&] {
            return std::make_unique<engine::ActTraceSource>(
                path, engine::ActTraceReadOptions{/*mmap=*/true});
        },
        kCorpusActs);

    Outcome o;
    o.acts = eng.acts();
    o.refs = eng.refs();
    o.rfms = eng.rfms();
    o.preventive = eng.preventiveRefreshes();
    o.stalls = eng.throttleStalls();
    o.maxDisturbance = eng.maxDisturbanceEver();
    o.bitFlips = eng.bitFlips();
    o.flippedRows = eng.flippedRows();
    o.logicOps = eng.logicOps();
    for (BankId b = 0; b < kBanks; ++b) {
        o.bankActs.push_back(eng.actsAt(b));
        o.bankPrev.push_back(eng.preventiveRefreshesAt(b));
        o.bankNow.push_back(eng.now(b));
    }
    return o;
}

class MergedCorpusReplay : public ::testing::TestWithParam<std::string>
{
};

TEST_P(MergedCorpusReplay, ShardAndPoolInvariantForEveryScheme)
{
    const std::string scheme = GetParam();
    const std::string path = corpusTrace();

    const Outcome base =
        replayCorpusSharded(scheme, path, /*shards=*/1,
                            /*pool=*/nullptr);
    EXPECT_EQ(base.acts, kCorpusActs) << scheme;

    runner::ThreadPool pool(3);
    for (std::uint32_t shards : {1u, 4u, 16u}) {
        for (runner::ThreadPool *p :
             {static_cast<runner::ThreadPool *>(nullptr), &pool}) {
            if (shards == 1 && p == nullptr)
                continue; // That is `base` itself.
            const Outcome sharded =
                replayCorpusSharded(scheme, path, shards, p);
            EXPECT_TRUE(sharded == base)
                << scheme << " shards=" << shards << " pool="
                << (p ? "3" : "none") << "\n  sharded: " << sharded
                << "\n  base:    " << base;
        }
    }
}

std::string
schemeCaseName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string s = info.param;
    for (auto &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredSchemes, MergedCorpusReplay,
                         ::testing::ValuesIn(
                             registry::schemeRegistry().names()),
                         schemeCaseName);

// --------------------------- fuzzed mutations of composed corpora

/** Open + fully drain under the chosen decoder; the corpus driver
 *  for "parses or throws SpecError, never UB". */
void
drainFuzz(const std::string &path, bool mmap)
{
    engine::ActTraceSource source(path,
                                  engine::ActTraceReadOptions{mmap});
    engine::ActBatch batch;
    for (;;) {
        batch.clear();
        if (source.fill(batch, engine::ActBatch::kCapacity) == 0)
            break;
    }
}

TEST(TraceFuzz, MutatedComposedCorporaParseOrThrowCleanly)
{
    // Seed corpus: a merged + spliced trace, so the mutations hit
    // pipeline-written multi-chunk layouts, not just hand-written
    // single-tenant files.
    const std::string t0 = tenantTrace("fuzz_t0", 201, 6000);
    const std::string t1 = tenantTrace("fuzz_t1", 202, 6000);
    const std::string seed_path = tmpPath("fuzz_seed");
    trace::materializePipeline(
        "merge:" + t0 + "," + t1 +
            "|splice:attack=double-sided,at=50000000,burst-acts=4000",
        seed_path, 42);
    const std::vector<std::uint8_t> base = readFile(seed_path);
    ASSERT_GT(base.size(), 1000u);

    const std::string fuzz_path = tmpPath("fuzz_mut");
    std::mt19937_64 rng(2027);
    unsigned rejected = 0;
    const unsigned kIterations = 120;
    for (unsigned i = 0; i < kIterations; ++i) {
        std::vector<std::uint8_t> bytes = base;
        switch (rng() % 4) {
        case 0: // Truncate anywhere.
            bytes.resize(rng() % bytes.size());
            break;
        case 1: // Flip one byte.
            bytes[rng() % bytes.size()] ^=
                static_cast<std::uint8_t>(1 + rng() % 255);
            break;
        case 2: { // Overwrite a u32 with garbage.
            const std::size_t off = rng() % (bytes.size() - 4);
            const std::uint32_t v = static_cast<std::uint32_t>(rng());
            for (int k = 0; k < 4; ++k)
                bytes[off + k] =
                    static_cast<std::uint8_t>(v >> (8 * k));
            break;
        }
        default: { // Copy a random slice over another offset.
            const std::size_t len = 1 + rng() % 256;
            if (bytes.size() <= len + 1)
                break;
            const std::size_t src = rng() % (bytes.size() - len);
            const std::size_t dst = rng() % (bytes.size() - len);
            std::copy(bytes.begin() +
                          static_cast<std::ptrdiff_t>(src),
                      bytes.begin() +
                          static_cast<std::ptrdiff_t>(src + len),
                      bytes.begin() +
                          static_cast<std::ptrdiff_t>(dst));
            break;
        }
        }
        writeFile(fuzz_path, bytes);
        try {
            // Alternate decoders so the mmap bounds checks see the
            // same corrupt corpus as the buffered reader.
            drainFuzz(fuzz_path, /*mmap=*/(i % 2) == 0);
        } catch (const SpecError &) {
            ++rejected;
        }
    }
    // Most mutations must be caught (a few land in slack bytes and
    // legitimately still parse).
    EXPECT_GT(rejected, kIterations / 3);
}

} // namespace
} // namespace mithril
