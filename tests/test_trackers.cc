/**
 * @file
 * Tests for every baseline protection scheme: PARA, PARFM, Graphene,
 * RFM-Graphene (incl. its intended pathology), TWiCe, CBT, and
 * BlockHammer, plus the configuration factory.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/mithril.hh"
#include "dram/timing.hh"
#include "registry/scheme_registry.hh"
#include "trackers/blockhammer.hh"
#include "trackers/cbt.hh"
#include "trackers/graphene.hh"
#include "trackers/para.hh"
#include "trackers/parfm.hh"
#include "trackers/rfm_graphene.hh"
#include "trackers/twice.hh"

namespace mithril::trackers
{
namespace
{

// ---------------------------------------------------------------- PARA

TEST(Para, RequiredProbabilityInverts)
{
    // (1-p)^(F/2) == target.
    const double p = Para::requiredProbability(10000, 1e-15);
    EXPECT_NEAR(std::pow(1.0 - p, 5000.0), 1e-15, 1e-17);
    // Lower FlipTH demands higher p.
    EXPECT_GT(Para::requiredProbability(1500, 1e-15),
              Para::requiredProbability(50000, 1e-15));
}

TEST(Para, ArrRateMatchesProbability)
{
    Para para(0.01, 1);
    std::vector<RowId> arr;
    const int kActs = 200000;
    for (int i = 0; i < kActs; ++i)
        para.onActivate(0, static_cast<RowId>(i % 100), 0, arr);
    EXPECT_NEAR(static_cast<double>(arr.size()) / kActs, 0.01, 0.002);
}

TEST(Para, ZeroAreaCost)
{
    Para para(0.01);
    EXPECT_DOUBLE_EQ(para.tableBytesPerBank(), 0.0);
    EXPECT_EQ(para.location(), Location::Mc);
    EXPECT_FALSE(para.usesRfm());
}

// --------------------------------------------------------------- PARFM

TEST(Parfm, SamplesUniformlyOverInterval)
{
    Parfm parfm(1, 64, 7);
    std::vector<RowId> arr;
    std::map<RowId, int> picks;
    for (int round = 0; round < 6400; ++round) {
        for (RowId r = 0; r < 64; ++r)
            parfm.onActivate(0, r, 0, arr);
        std::vector<RowId> sel;
        parfm.onRfm(0, 0, sel);
        ASSERT_EQ(sel.size(), 1u);
        ++picks[sel[0]];
    }
    // Each of the 64 rows expected ~100 picks.
    for (const auto &[row, count] : picks)
        EXPECT_NEAR(count, 100, 45) << "row " << row;
    EXPECT_EQ(picks.size(), 64u);
}

TEST(Parfm, AlwaysRefreshesWhenNonEmpty)
{
    Parfm parfm(1, 16);
    std::vector<RowId> arr, sel;
    parfm.onActivate(0, 9, 0, arr);
    parfm.onRfm(0, 0, sel);
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_EQ(sel[0], 9u);
    // Empty interval: nothing sampled.
    sel.clear();
    parfm.onRfm(0, 0, sel);
    EXPECT_TRUE(sel.empty());
}

TEST(Parfm, UsesRfmInterface)
{
    Parfm parfm(2, 48);
    EXPECT_TRUE(parfm.usesRfm());
    EXPECT_EQ(parfm.rfmTh(), 48u);
    EXPECT_EQ(parfm.location(), Location::Dram);
    EXPECT_LT(parfm.tableBytesPerBank(), 64.0);
}

// ------------------------------------------------------------ Graphene

GrapheneParams
grapheneParams()
{
    GrapheneParams p;
    p.nEntry = 32;
    p.threshold = 100;
    p.resetInterval = msToTick(32.0);
    return p;
}

TEST(Graphene, TriggersArrAtThresholdMultiples)
{
    Graphene g(1, grapheneParams());
    std::vector<RowId> arr;
    for (int i = 0; i < 99; ++i)
        g.onActivate(0, 7, 0, arr);
    EXPECT_TRUE(arr.empty());
    g.onActivate(0, 7, 0, arr);
    ASSERT_EQ(arr.size(), 1u);
    EXPECT_EQ(arr[0], 7u);
    // Next multiple fires again (spillover behaviour).
    for (int i = 0; i < 100; ++i)
        g.onActivate(0, 7, 0, arr);
    EXPECT_EQ(arr.size(), 2u);
    EXPECT_EQ(g.arrCount(), 2u);
}

TEST(Graphene, TableResetsAfterInterval)
{
    Graphene g(1, grapheneParams());
    std::vector<RowId> arr;
    for (int i = 0; i < 60; ++i)
        g.onActivate(0, 7, 0, arr);
    // Past the reset interval the count restarts: 60 + 60 without a
    // reset would cross 100, but the reset clears the first 60.
    for (int i = 0; i < 60; ++i)
        g.onActivate(0, 7, msToTick(33.0), arr);
    EXPECT_TRUE(arr.empty());
}

TEST(Graphene, RequiredEntriesFormula)
{
    EXPECT_EQ(Graphene::requiredEntries(1000, 100), 10u);
    EXPECT_EQ(Graphene::requiredEntries(1001, 100), 11u);
}

// -------------------------------------------------------- RFM-Graphene

TEST(RfmGraphene, BuffersAndDrainsOnePerRfm)
{
    RfmGrapheneParams p;
    p.nEntry = 32;
    p.threshold = 10;
    p.rfmTh = 64;
    p.resetInterval = msToTick(32.0);
    RfmGraphene g(1, p);

    std::vector<RowId> arr;
    // Drive three rows across the threshold.
    for (RowId r = 0; r < 3; ++r)
        for (int i = 0; i < 10; ++i)
            g.onActivate(0, 100 + r, 0, arr);
    EXPECT_TRUE(arr.empty());  // Nothing immediate: buffered.
    EXPECT_EQ(g.maxQueueDepth(), 3u);

    std::vector<RowId> sel;
    g.onRfm(0, 0, sel);
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_EQ(sel[0], 100u);  // FIFO drain.
    sel.clear();
    g.onRfm(0, 0, sel);
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_EQ(sel[0], 101u);
}

TEST(RfmGraphene, EmptyQueueRfmDoesNothing)
{
    RfmGrapheneParams p;
    p.nEntry = 8;
    p.threshold = 5;
    p.rfmTh = 32;
    p.resetInterval = msToTick(32.0);
    RfmGraphene g(1, p);
    std::vector<RowId> sel;
    g.onRfm(0, 0, sel);
    EXPECT_TRUE(sel.empty());
}

// --------------------------------------------------------------- TWiCe

TwiceParams
twiceParams()
{
    TwiceParams p;
    p.capacity = 64;
    p.rhThreshold = 50;
    p.pruneRateNum = 1;
    p.pruneRateDen = 1;
    return p;
}

TEST(Twice, ArrAtRhThreshold)
{
    Twice t(1, twiceParams());
    std::vector<RowId> arr;
    for (int i = 0; i < 49; ++i)
        t.onActivate(0, 5, 0, arr);
    EXPECT_TRUE(arr.empty());
    t.onActivate(0, 5, 0, arr);
    ASSERT_EQ(arr.size(), 1u);
    EXPECT_EQ(arr[0], 5u);
    // Entry was reset after the ARR.
    EXPECT_EQ(t.liveEntries(0), 0u);
}

TEST(Twice, PruningDropsColdRows)
{
    Twice t(1, twiceParams());
    std::vector<RowId> arr;
    t.onActivate(0, 1, 0, arr);   // count 1
    for (int i = 0; i < 10; ++i)
        t.onActivate(0, 2, 0, arr);  // count 10
    EXPECT_EQ(t.liveEntries(0), 2u);
    // After 1 checkpoint: life=1, row 1 (count 1 >= 1) survives;
    // after 2: row 1 (count 1 < 2) is pruned, row 2 survives.
    t.onRefresh(0, 0);
    EXPECT_EQ(t.liveEntries(0), 2u);
    t.onRefresh(0, 0);
    EXPECT_EQ(t.liveEntries(0), 1u);
}

TEST(Twice, OverflowEvictsColdest)
{
    TwiceParams p = twiceParams();
    p.capacity = 2;
    Twice t(1, p);
    std::vector<RowId> arr;
    for (int i = 0; i < 5; ++i)
        t.onActivate(0, 1, 0, arr);
    t.onActivate(0, 2, 0, arr);
    t.onActivate(0, 3, 0, arr);  // Overflow: row 2 (count 1) evicted.
    EXPECT_EQ(t.overflows(), 1u);
    EXPECT_EQ(t.liveEntries(0), 2u);
    EXPECT_EQ(t.peakOccupancy(), 2u);
}

TEST(Twice, BoundedOccupancyUnderUniformStream)
{
    // With pruning, a uniform stream cannot blow up the table.
    TwiceParams p;
    p.capacity = 4096;
    p.rhThreshold = 1000;
    p.pruneRateNum = 1;
    p.pruneRateDen = 1;
    Twice t(1, p);
    std::vector<RowId> arr;
    // ~80 ACTs per tREFI at max rate; simulate 100 intervals.
    for (int interval = 0; interval < 100; ++interval) {
        for (int i = 0; i < 80; ++i) {
            t.onActivate(
                0, static_cast<RowId>((interval * 80 + i) % 7919), 0,
                arr);
        }
        t.onRefresh(0, 0);
    }
    EXPECT_EQ(t.overflows(), 0u);
    EXPECT_LT(t.peakOccupancy(), 200u);
}

// ----------------------------------------------------------------- CBT

CbtParams
cbtParams()
{
    CbtParams p;
    p.nCounters = 64;
    p.splitThreshold = 10;
    p.refreshThreshold = 20;
    p.rowsPerBank = 1024;
    p.resetInterval = msToTick(32.0);
    return p;
}

TEST(Cbt, StartsWithSingleRootLeaf)
{
    Cbt cbt(1, cbtParams());
    EXPECT_EQ(cbt.leafCount(0), 1u);
}

TEST(Cbt, SplitsHotRegions)
{
    Cbt cbt(1, cbtParams());
    std::vector<RowId> arr;
    for (int i = 0; i < 12; ++i)
        cbt.onActivate(0, 100, 0, arr);
    EXPECT_GT(cbt.leafCount(0), 1u);
}

TEST(Cbt, RefreshesWholeGroupAtThreshold)
{
    CbtParams p = cbtParams();
    p.nCounters = 1;  // No splitting possible: root covers all rows.
    Cbt cbt(1, p);
    std::vector<RowId> arr;
    for (int i = 0; i < 19; ++i)
        cbt.onActivate(0, 100, 0, arr);
    EXPECT_TRUE(arr.empty());
    cbt.onActivate(0, 100, 0, arr);
    // The entire 1024-row group is refreshed — the RFM-misfit the
    // paper calls out in Section III-D.
    EXPECT_EQ(arr.size(), 1024u);
    EXPECT_EQ(cbt.maxGroupRefreshed(), 1024u);
}

TEST(Cbt, SplitLeavesCoverDisjointRanges)
{
    Cbt cbt(1, cbtParams());
    std::vector<RowId> arr;
    for (int i = 0; i < 200; ++i)
        cbt.onActivate(0, static_cast<RowId>(i % 1024), 0, arr);
    // Leaves partition the space: count via a fresh activation of each
    // row landing in exactly one leaf (no crash, no overlap signal).
    EXPECT_GE(cbt.leafCount(0), 1u);
}

// --------------------------------------------------------- BlockHammer

BlockHammerParams
bhParams()
{
    BlockHammerParams p;
    p.cbfSize = 1024;
    p.hashes = 4;
    p.nbl = 100;
    p.flipTh = 1000;
    p.tCbf = msToTick(32.0);
    p.tRc = nsToTick(48.64);
    return p;
}

TEST(BlockHammer, BlacklistsHotRow)
{
    BlockHammer bh(1, bhParams());
    std::vector<RowId> arr;
    for (int i = 0; i < 99; ++i)
        bh.onActivate(0, 7, 0, arr);
    EXPECT_FALSE(bh.isBlacklisted(0, 7, 0));
    bh.onActivate(0, 7, 0, arr);
    EXPECT_TRUE(bh.isBlacklisted(0, 7, 0));
    EXPECT_GE(bh.estimate(0, 7, 0), 100u);
}

TEST(BlockHammer, ThrottleDelaysBlacklistedRow)
{
    BlockHammer bh(1, bhParams());
    std::vector<RowId> arr;
    for (int i = 0; i < 120; ++i)
        bh.onActivate(0, 7, static_cast<Tick>(i), arr);
    const Tick now = 200;
    const Tick allowed = bh.throttleAct(0, 7, now);
    EXPECT_GT(allowed, now);
    EXPECT_GE(allowed, 119 + bh.delayQuantum());
    EXPECT_GT(bh.throttles(), 0u);
}

TEST(BlockHammer, CleanRowNotThrottled)
{
    BlockHammer bh(1, bhParams());
    EXPECT_EQ(bh.throttleAct(0, 99, 1000), 1000);
}

TEST(BlockHammer, DelayQuantumFormula)
{
    const BlockHammerParams p = bhParams();
    BlockHammer bh(1, p);
    const Tick expect =
        (p.tCbf - static_cast<Tick>(p.nbl) * p.tRc) /
        static_cast<Tick>(p.flipTh - p.nbl);
    EXPECT_EQ(bh.delayQuantum(), expect);
}

TEST(BlockHammer, ThrottledRateCapsBelowFlipTh)
{
    // A row throttled at tDelay spacing cannot exceed ~FlipTH ACTs in
    // one CBF lifetime — the scheme's safety argument.
    const BlockHammerParams p = bhParams();
    const double max_acts =
        static_cast<double>(p.nbl) +
        static_cast<double>(p.tCbf) /
            static_cast<double>(BlockHammer(1, p).delayQuantum());
    EXPECT_LE(max_acts, 1.05 * p.flipTh);
}

TEST(BlockHammer, EpochResetClearsCounts)
{
    BlockHammer bh(1, bhParams());
    std::vector<RowId> arr;
    for (int i = 0; i < 120; ++i)
        bh.onActivate(0, 7, 0, arr);
    EXPECT_TRUE(bh.isBlacklisted(0, 7, 0));
    // After both filters' lifetimes pass, the row is clean again.
    const Tick later = msToTick(70.0);
    bh.onActivate(0, 7, later, arr);
    EXPECT_FALSE(bh.isBlacklisted(0, 7, later));
}

TEST(BlockHammer, AliasingPollutionRaisesFloors)
{
    // Spraying many distinct rows raises CBF counts for *unseen* rows
    // (the performance-attack mechanism of Figure 10(c)).
    BlockHammerParams p = bhParams();
    p.cbfSize = 128;  // Small filter: heavy aliasing.
    BlockHammer bh(1, p);
    std::vector<RowId> arr;
    for (int i = 0; i < 60000; ++i)
        bh.onActivate(0, static_cast<RowId>(i % 500), 0, arr);
    EXPECT_GT(bh.estimate(0, 400000, 0), 0u);
}

// ------------------------------------------------------------- Factory

class FactoryTest : public ::testing::Test
{
  protected:
    dram::Timing timing_ = dram::ddr5_4800();
    dram::Geometry geom_ = dram::paperGeometry();
};

TEST_F(FactoryTest, EveryRegisteredSchemeBuilds)
{
    registry::SchemeKnobs knobs;
    knobs.flipTh = 6250;
    for (const std::string &name :
         registry::schemeRegistry().names()) {
        auto tracker = registry::makeScheme(name, knobs.toParams(),
                                            {timing_, geom_});
        if (name == "none") {
            EXPECT_EQ(tracker, nullptr);
            continue;
        }
        ASSERT_NE(tracker, nullptr) << name;
        EXPECT_FALSE(tracker->name().empty());
        EXPECT_GE(tracker->tableBytesPerBank(), 0.0);
    }
}

TEST_F(FactoryTest, AliasesResolveToCanonicalEntries)
{
    const auto *plus = registry::schemeRegistry().find("mithril_plus");
    ASSERT_NE(plus, nullptr);
    EXPECT_EQ(plus->name, "mithril+");
    const auto *rfmg =
        registry::schemeRegistry().find("rfm_graphene");
    ASSERT_NE(rfmg, nullptr);
    EXPECT_EQ(rfmg->name, "rfm-graphene");
}

TEST_F(FactoryTest, DefaultRfmThSchedule)
{
    EXPECT_EQ(core::defaultMithrilRfmTh(50000), 256u);
    EXPECT_EQ(core::defaultMithrilRfmTh(12500), 256u);
    EXPECT_EQ(core::defaultMithrilRfmTh(6250), 128u);
    EXPECT_EQ(core::defaultMithrilRfmTh(3125), 64u);
    EXPECT_EQ(core::defaultMithrilRfmTh(1500), 32u);
}

TEST_F(FactoryTest, ParfmAutoRfmThMeetsTarget)
{
    registry::SchemeKnobs knobs;
    knobs.flipTh = 6250;
    auto tracker = registry::makeScheme("parfm", knobs.toParams(),
                                        {timing_, geom_});
    ASSERT_NE(tracker, nullptr);
    EXPECT_TRUE(tracker->usesRfm());
    EXPECT_GT(tracker->rfmTh(), 0u);
    // PARFM must sample far more often than Mithril's RFM_TH=128.
    EXPECT_LT(tracker->rfmTh(), 128u);
}

TEST_F(FactoryTest, MithrilRespectsExplicitKnobs)
{
    registry::SchemeKnobs knobs;
    knobs.flipTh = 6250;
    knobs.rfmTh = 64;
    knobs.adTh = 0;
    auto tracker = registry::makeScheme("mithril", knobs.toParams(),
                                        {timing_, geom_});
    EXPECT_EQ(tracker->rfmTh(), 64u);
}

} // namespace
} // namespace mithril::trackers
