/**
 * @file
 * Tests for the workload generators: determinism, footprint
 * containment, the lbm-style row-concentration property behind
 * Figure 8, multithreaded sharing, and attack-pattern aim.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mc/address_map.hh"
#include "sim/workload_suite.hh"
#include "workload/attacks.hh"
#include "workload/multithreaded.hh"
#include "workload/spec_like.hh"

namespace mithril::workload
{
namespace
{

SyntheticParams
baseParams()
{
    SyntheticParams p;
    p.base = 1ull << 30;
    p.footprint = 16ull << 20;
    p.meanGap = 10.0;
    p.seed = 77;
    return p;
}

template <typename Gen>
void
expectDeterministic(Gen &a, Gen &b, int n = 1000)
{
    for (int i = 0; i < n; ++i) {
        auto ra = a.next();
        auto rb = b.next();
        ASSERT_TRUE(ra.has_value());
        ASSERT_TRUE(rb.has_value());
        ASSERT_EQ(ra->addr, rb->addr);
        ASSERT_EQ(ra->gap, rb->gap);
        ASSERT_EQ(ra->write, rb->write);
    }
}

TEST(SpecLike, GeneratorsAreDeterministic)
{
    auto p = baseParams();
    {
        StreamSweepGen a(p), b(p);
        expectDeterministic(a, b);
    }
    {
        PointerChaseGen a(p), b(p);
        expectDeterministic(a, b);
    }
    {
        ZipfGen a(p), b(p);
        expectDeterministic(a, b);
    }
    {
        ComputeGen a(p), b(p);
        expectDeterministic(a, b);
    }
}

TEST(SpecLike, AddressesStayInFootprint)
{
    auto p = baseParams();
    StreamSweepGen sweep(p);
    PointerChaseGen chase(p);
    ZipfGen zipf(p);
    ComputeGen compute(p);
    TraceGenerator *gens[] = {&sweep, &chase, &zipf, &compute};
    for (auto *gen : gens) {
        for (int i = 0; i < 5000; ++i) {
            auto r = gen->next();
            ASSERT_TRUE(r.has_value());
            ASSERT_GE(r->addr, p.base) << gen->name();
            ASSERT_LT(r->addr, p.base + p.footprint) << gen->name();
            ASSERT_EQ(r->addr % 64, 0u) << gen->name();
            ASSERT_GE(r->gap, 1u);
        }
    }
}

TEST(SpecLike, LimitEndsTheTrace)
{
    auto p = baseParams();
    p.limit = 10;
    PointerChaseGen gen(p);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(gen.next().has_value());
    EXPECT_FALSE(gen.next().has_value());
}

TEST(SpecLike, StreamSweepShowsFigure8Concentration)
{
    // The lbm pattern: inside a small window, accesses concentrate on
    // few rows (~128 lines per 8KB row); over the whole run they cover
    // a large footprint.
    auto p = baseParams();
    p.footprint = 64ull << 20;
    StreamSweepGen gen(p, 2ull << 20);

    std::set<Addr> windows_rows;
    std::set<Addr> all_rows;
    int window_count = 0;
    double mean_rows_per_window = 0.0;
    for (int w = 0; w < 50; ++w) {
        windows_rows.clear();
        for (int i = 0; i < 256; ++i) {
            auto r = gen.next();
            windows_rows.insert(r->addr / 8192);
            all_rows.insert(r->addr / 8192);
        }
        mean_rows_per_window += static_cast<double>(
            windows_rows.size());
        ++window_count;
    }
    mean_rows_per_window /= window_count;
    // 256 consecutive accesses land in very few 8KB rows...
    EXPECT_LT(mean_rows_per_window, 8.0);
    // ...yet the run covers many distinct rows overall.
    EXPECT_GT(all_rows.size(), 40u);
}

TEST(SpecLike, PointerChaseHasLowRowLocality)
{
    auto p = baseParams();
    p.footprint = 64ull << 20;
    PointerChaseGen gen(p);
    std::set<Addr> rows;
    for (int i = 0; i < 256; ++i)
        rows.insert(gen.next()->addr / 8192);
    EXPECT_GT(rows.size(), 200u);
}

TEST(SpecLike, ZipfConcentratesOnHotLines)
{
    auto p = baseParams();
    ZipfGen gen(p, 1.1);
    std::map<Addr, int> counts;
    for (int i = 0; i < 20000; ++i)
        ++counts[gen.next()->addr];
    int max_count = 0;
    for (const auto &[addr, c] : counts)
        max_count = std::max(max_count, c);
    // The hottest line dominates far beyond uniform.
    EXPECT_GT(max_count, 200);
}

TEST(SpecLike, ComputeGenHasLargeGaps)
{
    auto p = baseParams();
    p.meanGap = 30.0;
    ComputeGen gen(p);
    double sum = 0.0;
    for (int i = 0; i < 5000; ++i)
        sum += static_cast<double>(gen.next()->gap);
    EXPECT_GT(sum / 5000.0, 200.0);  // ~12x the base gap.
}

TEST(SpecLike, GupsPairsReadWithWriteback)
{
    auto p = baseParams();
    GupsGen gen(p);
    for (int i = 0; i < 1000; ++i) {
        auto rd = gen.next();
        auto wr = gen.next();
        ASSERT_TRUE(rd && wr);
        EXPECT_FALSE(rd->write);
        EXPECT_TRUE(wr->write);
        EXPECT_EQ(rd->addr, wr->addr);  // Read-modify-write pair.
        EXPECT_EQ(wr->gap, 2u);         // Dependent write.
    }
}

TEST(SpecLike, GupsHasNoLocality)
{
    auto p = baseParams();
    p.footprint = 64ull << 20;
    GupsGen gen(p);
    std::set<Addr> rows;
    for (int i = 0; i < 512; ++i)
        rows.insert(gen.next()->addr / 8192);
    EXPECT_GT(rows.size(), 200u);
}

TEST(SpecLike, StencilInterleavesStreams)
{
    auto p = baseParams();
    StencilGen gen(p, 4);
    // 5 streams (4 read planes + 1 write): one iteration = 5 records;
    // the 5th is the write and all 5 addresses are distinct.
    std::set<Addr> addrs;
    for (int i = 0; i < 5; ++i) {
        auto rec = gen.next();
        ASSERT_TRUE(rec.has_value());
        EXPECT_EQ(rec->write, i == 4);
        addrs.insert(rec->addr);
    }
    EXPECT_EQ(addrs.size(), 5u);
}

TEST(SpecLike, StencilStreamsAdvanceSequentially)
{
    auto p = baseParams();
    StencilGen gen(p, 2);
    // Stream 0's consecutive visits are one line apart.
    auto first = gen.next();   // stream 0, line 0
    gen.next();                // stream 1
    gen.next();                // write stream
    auto second = gen.next();  // stream 0, line 1
    EXPECT_EQ(second->addr, first->addr + 64);
}

TEST(Multithreaded, ThreadsSharePartitionsAcrossPhases)
{
    MtParams p;
    p.base = 0;
    p.footprint = 64ull << 20;
    p.threads = 4;
    p.phaseLines = 64;
    PartitionedSweepGen t0(p, 0);

    // Across enough phases, thread 0 visits every partition.
    std::set<std::uint64_t> partitions;
    const std::uint64_t part_bytes = p.footprint / p.threads;
    for (int i = 0; i < 64 * 8; ++i)
        partitions.insert(t0.next()->addr / part_bytes);
    EXPECT_EQ(partitions.size(), 4u);
}

TEST(Multithreaded, PageRankMixesScanAndGather)
{
    MtParams p;
    p.base = 0;
    p.footprint = 64ull << 20;
    p.threads = 4;
    PageRankGen gen(p, 1);
    int scans = 0, gathers = 0;
    for (int i = 0; i < 8000; ++i) {
        auto r = gen.next();
        if (r->addr < p.footprint / 2)
            ++scans;
        else
            ++gathers;
    }
    EXPECT_GT(scans, 4000);
    EXPECT_GT(gathers, 500);
}

class AttackTest : public ::testing::Test
{
  protected:
    dram::Geometry geom_ = dram::paperGeometry();
    mc::AddressMap map_{geom_};

    AttackTarget
    target()
    {
        AttackTarget t;
        t.map = &map_;
        t.channel = 1;
        t.rank = 0;
        t.bank = 9;
        t.baseRow = 5000;
        return t;
    }

    mc::Request
    decode(Addr addr)
    {
        mc::Request req;
        req.addr = addr;
        map_.decode(req);
        return req;
    }
};

TEST_F(AttackTest, DoubleSidedAlternatesAggressors)
{
    DoubleSidedAttack gen(target());
    auto a = gen.next();
    auto b = gen.next();
    auto c = gen.next();
    EXPECT_EQ(decode(a->addr).row, 5000u);
    EXPECT_EQ(decode(b->addr).row, 5002u);
    EXPECT_EQ(decode(c->addr).row, 5000u);
    EXPECT_TRUE(a->uncached);
    EXPECT_EQ(gen.victimRow(), 5001u);
}

TEST_F(AttackTest, AllAttackTrafficHitsTargetBank)
{
    DoubleSidedAttack ds(target());
    MultiSidedAttack ms(target(), 32);
    RfmOptimalAttack ro(target(), 64);
    CbfPollutionAttack cp(target(), 128);
    TraceGenerator *gens[] = {&ds, &ms, &ro, &cp};
    const BankId expect = map_.flatBank(1, 0, 9);
    for (auto *gen : gens) {
        for (int i = 0; i < 500; ++i) {
            auto r = gen->next();
            ASSERT_TRUE(r.has_value());
            ASSERT_EQ(decode(r->addr).bank, expect) << gen->name();
            ASSERT_TRUE(r->uncached);
        }
    }
}

TEST_F(AttackTest, MultiSidedCoversAllAggressors)
{
    MultiSidedAttack gen(target(), 32);
    std::set<RowId> rows;
    for (int i = 0; i < 33; ++i)
        rows.insert(decode(gen.next()->addr).row);
    EXPECT_EQ(rows.size(), 33u);  // 33 aggressors for 32 victims.
    EXPECT_EQ(*rows.begin(), 5000u);
    EXPECT_EQ(*rows.rbegin(), 5000u + 64u);
}

TEST_F(AttackTest, RfmOptimalOneActPerRowPerPass)
{
    RfmOptimalAttack gen(target(), 16);
    std::map<RowId, int> counts;
    for (int i = 0; i < 16 * 3; ++i)
        ++counts[decode(gen.next()->addr).row];
    EXPECT_EQ(counts.size(), 16u);
    for (const auto &[row, c] : counts)
        EXPECT_EQ(c, 3);
}

TEST_F(AttackTest, ConcentrationDrivesAllRowsThenFocusesPair)
{
    const std::uint32_t threshold = 10, rows = 5;
    ConcentrationAttack gen(target(), threshold, rows);
    std::map<RowId, int> phase1;
    for (std::uint32_t i = 0; i < threshold * rows; ++i)
        ++phase1[decode(gen.next()->addr).row];
    EXPECT_EQ(phase1.size(), rows);
    for (const auto &[row, c] : phase1)
        EXPECT_EQ(c, static_cast<int>(threshold));

    // Phase 2: only the last pair.
    std::set<RowId> phase2;
    for (int i = 0; i < 20; ++i)
        phase2.insert(decode(gen.next()->addr).row);
    EXPECT_EQ(phase2.size(), 2u);
    EXPECT_EQ(gen.finalVictim(), 5000u + 2 * (rows - 1) - 1);
}

TEST_F(AttackTest, CbfPollutionAlternatesWithinBurst)
{
    CbfPollutionAttack gen(target(), 64, 4);
    // Within a burst, consecutive records alternate two rows so each
    // forces a fresh activation.
    auto a = gen.next();
    auto b = gen.next();
    EXPECT_NE(decode(a->addr).row, decode(b->addr).row);
}

TEST(WorkloadSuite, NamesRoundTrip)
{
    for (auto kind : sim::allWorkloads()) {
        EXPECT_EQ(sim::workloadFromName(sim::workloadName(kind)),
                  kind);
    }
    EXPECT_EQ(sim::multiProgrammedWorkloads().size(), 2u);
    EXPECT_EQ(sim::multiThreadedWorkloads().size(), 3u);
}

TEST(WorkloadSuite, BuildsEveryThread)
{
    for (auto kind : sim::allWorkloads()) {
        for (std::uint32_t i = 0; i < 16; ++i) {
            auto gen = sim::makeWorkloadThread(kind, i, 16, 1);
            ASSERT_NE(gen, nullptr);
            auto r = gen->next();
            ASSERT_TRUE(r.has_value());
        }
    }
}

TEST(WorkloadSuite, MultiProgrammedFootprintsAreDisjoint)
{
    auto g0 = sim::makeWorkloadThread(sim::WorkloadKind::MixHigh, 0,
                                      16, 1);
    auto g5 = sim::makeWorkloadThread(sim::WorkloadKind::MixHigh, 5,
                                      16, 1);
    Addr min0 = ~0ull, max0 = 0, min5 = ~0ull, max5 = 0;
    for (int i = 0; i < 2000; ++i) {
        const Addr a0 = g0->next()->addr;
        const Addr a5 = g5->next()->addr;
        min0 = std::min(min0, a0);
        max0 = std::max(max0, a0);
        min5 = std::min(min5, a5);
        max5 = std::max(max5, a5);
    }
    EXPECT_LT(max0, min5);
}

} // namespace
} // namespace mithril::workload
